//! The uniform, serializable result of running an [`ExperimentSpec`].
//!
//! Every experiment — policy grids, sweeps, and single-thread
//! characterizations — produces an [`ExperimentReport`]: raw per-cell results
//! ([`PolicyCell`] / [`BenchRow`]) plus aggregated [`SummaryRow`]s, ready to
//! serialize to JSON or TOML or to pretty-print as text.

use serde::{Deserialize, Serialize};
use smt_sched::AllocationPolicyKind;
use smt_types::adaptive::{PolicyResidency, SelectorKind};
use smt_types::config::FetchPolicyKind;
use smt_types::{CellOutcome, MetricEstimate, RunHealth, SimError};

use crate::experiments::spec::{ExperimentKind, ExperimentSpec};
use crate::metrics;
use crate::runner::{
    AdaptiveWorkloadResult, ChipWorkloadResult, RunScale, SampledWorkloadResult, WorkloadResult,
};

/// One multiprogram grid cell: a (policy, workload, sweep point) evaluation.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct PolicyCell {
    /// The fetch policy evaluated.
    pub policy: FetchPolicyKind,
    /// Workload name (benchmarks joined with dashes).
    pub workload: String,
    /// The constituent benchmarks, one per hardware thread.
    pub benchmarks: Vec<String>,
    /// Workload group label (`ILP`, `MLP` or `MIX`).
    pub group: String,
    /// The sweep value this cell was evaluated at, when sweeping.
    pub parameter: Option<u64>,
    /// System throughput (higher is better).
    pub stp: f64,
    /// Average normalized turnaround time (lower is better).
    pub antt: f64,
    /// Per-thread IPC in the multithreaded run (Figures 11/12).
    pub per_thread_ipc: Vec<f64>,
    /// Per-thread single-threaded reference IPC at the same instruction counts.
    pub per_thread_st_ipc: Vec<f64>,
    /// Chip cells: the thread-to-core allocation policy evaluated.
    pub allocation: Option<AllocationPolicyKind>,
    /// Chip cells: number of cores on the chip.
    pub num_cores: Option<u64>,
    /// Chip cells: benchmarks per core after allocation (slots joined with `+`).
    pub core_assignments: Option<Vec<String>>,
    /// Chip cells: aggregate IPC per core.
    pub per_core_ipc: Option<Vec<f64>>,
    /// Chip cells: each core's contribution to the cell STP.
    pub per_core_stp: Option<Vec<f64>>,
    /// Adaptive cells: the policy selector evaluated (`policy` then names
    /// the *initial* policy, `candidates[0]`).
    pub selector: Option<SelectorKind>,
    /// Adaptive cells: the candidate policy set evaluated.
    pub candidates: Option<Vec<FetchPolicyKind>>,
    /// Adaptive cells: fraction of completed intervals each policy was
    /// active.
    pub policy_residency: Option<Vec<PolicyResidency>>,
    /// Sampled cells: the statistical pedigree of the estimates. `None` for
    /// exact (full-detail) cells; when present, `stp`/`antt` and the IPC
    /// columns above carry the estimate means.
    pub sampled: Option<SampledCellStats>,
}

/// Statistical metadata of one sampled cell: how much detailed simulation
/// backs the estimates and the 95% confidence interval of each headline
/// metric.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SampledCellStats {
    /// Measurement windows the estimates aggregate.
    pub windows: u32,
    /// Fraction of committed instructions simulated in detailed mode.
    pub detailed_fraction: f64,
    /// System throughput with its confidence interval.
    pub stp: MetricEstimate,
    /// Average normalized turnaround time with its confidence interval.
    pub antt: MetricEstimate,
    /// Aggregate multithreaded IPC with its confidence interval.
    pub total_ipc: MetricEstimate,
}

/// Warm-checkpoint traffic of one sampled experiment run: how many functional
/// fast-forward prefixes were actually simulated versus served from the
/// shared [`crate::runner::CheckpointCache`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct CheckpointSummary {
    /// Warm checkpoints captured (distinct workload × configuration prefixes).
    pub captures: u64,
    /// Cell evaluations that reused an already-captured checkpoint.
    pub hits: u64,
}

/// Aggregate over the workloads of one (sweep point, policy, group) slice.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SummaryRow {
    /// The fetch policy aggregated.
    pub policy: FetchPolicyKind,
    /// Workload group label, or `None` for the all-workloads aggregate.
    pub group: Option<String>,
    /// The sweep value, when sweeping.
    pub parameter: Option<u64>,
    /// Chip grids: the thread-to-core allocation policy aggregated.
    pub allocation: Option<AllocationPolicyKind>,
    /// Adaptive grids: the policy selector aggregated.
    pub selector: Option<SelectorKind>,
    /// Adaptive grids: the candidate policy set aggregated.
    pub candidates: Option<Vec<FetchPolicyKind>>,
    /// Number of workloads aggregated.
    pub workloads: u64,
    /// Harmonic-mean STP (higher is better).
    pub avg_stp: f64,
    /// Arithmetic-mean ANTT (lower is better).
    pub avg_antt: f64,
}

/// One single-thread characterization row; which optional columns are present
/// depends on the [`ExperimentKind`].
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct BenchRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Single-thread IPC of the run behind this row.
    pub ipc: f64,
    /// Long-latency loads per 1 K instructions (Table I).
    pub lll_per_kinst: Option<f64>,
    /// Measured MLP (Table I).
    pub mlp: Option<f64>,
    /// MLP impact on single-thread performance (Table I).
    pub mlp_impact: Option<f64>,
    /// Measured ILP/MLP classification label (Table I).
    pub class: Option<String>,
    /// Classification reported in the paper (Table I).
    pub paper_class: Option<String>,
    /// Single-thread IPC without the prefetcher (Figure 5).
    pub ipc_without_prefetch: Option<f64>,
    /// Prefetcher speedup (Figure 5).
    pub prefetch_speedup: Option<f64>,
    /// Long-latency load predictor accuracy over all loads (Figure 6).
    pub lll_accuracy: Option<f64>,
    /// Long-latency load predictor accuracy over actual misses.
    pub lll_miss_accuracy: Option<f64>,
    /// Binary MLP prediction accuracy (Figure 7).
    pub mlp_accuracy: Option<f64>,
    /// MLP-distance "far enough" accuracy (Figure 8).
    pub mlp_distance_accuracy: Option<f64>,
    /// Predicted MLP-distance CDF as `(distance, fraction)` points (Figure 4).
    pub mlp_distance_cdf: Option<Vec<(u32, f64)>>,
}

/// The complete result of running one experiment spec.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ExperimentReport {
    /// Name of the experiment that produced this report.
    pub experiment: String,
    /// The paper table/figure reference carried over from the spec.
    pub paper_ref: String,
    /// The experiment kind.
    pub kind: ExperimentKind,
    /// The scale the experiment ran at.
    pub scale: RunScale,
    /// Worker threads used by the execution engine.
    pub threads_used: u64,
    /// Single-threaded reference simulations actually performed (cache
    /// misses of the shared [`crate::runner::StReferenceCache`]).
    pub reference_runs: u64,
    /// Wall-clock run time in milliseconds.
    pub wall_ms: u64,
    /// Multiprogram grid cells (policy-grid kinds; empty otherwise).
    pub policy_cells: Vec<PolicyCell>,
    /// Aggregated rows over the grid cells (policy-grid kinds).
    pub summaries: Vec<SummaryRow>,
    /// Per-benchmark rows (single-thread kinds; empty otherwise).
    pub bench_rows: Vec<BenchRow>,
    /// Terminal outcome of every planned cell, in cell order. `None` only in
    /// reports written before the resilient engine.
    pub cell_outcomes: Option<Vec<CellOutcome>>,
    /// Whole-run health classification. `None` only in reports written
    /// before the resilient engine.
    pub health: Option<RunHealth>,
    /// Warm-checkpoint traffic; present only for sampled runs.
    pub checkpoints: Option<CheckpointSummary>,
}

impl ExperimentReport {
    /// Builds a cell from a [`WorkloadResult`].
    pub(crate) fn cell_from_result(
        result: &WorkloadResult,
        benchmarks: &[String],
        group: &str,
        parameter: Option<u64>,
    ) -> PolicyCell {
        PolicyCell {
            policy: result.policy,
            workload: result.workload.clone(),
            benchmarks: benchmarks.to_vec(),
            group: group.to_string(),
            parameter,
            stp: result.stp,
            antt: result.antt,
            per_thread_ipc: result.per_thread_ipc.clone(),
            per_thread_st_ipc: result.per_thread_st_ipc.clone(),
            allocation: None,
            num_cores: None,
            core_assignments: None,
            per_core_ipc: None,
            per_core_stp: None,
            selector: None,
            candidates: None,
            policy_residency: None,
            sampled: None,
        }
    }

    /// Builds a cell from a sampled-mode [`SampledWorkloadResult`]: the shared
    /// metric columns carry the estimate means, and the `sampled` block keeps
    /// the confidence intervals and detailed-simulation pedigree.
    pub(crate) fn cell_from_sampled_result(
        result: &SampledWorkloadResult,
        benchmarks: &[String],
        group: &str,
        parameter: Option<u64>,
    ) -> PolicyCell {
        PolicyCell {
            policy: result.policy,
            workload: result.workload.clone(),
            benchmarks: benchmarks.to_vec(),
            group: group.to_string(),
            parameter,
            stp: result.stp.mean,
            antt: result.antt.mean,
            per_thread_ipc: result.per_thread_ipc.iter().map(|e| e.mean).collect(),
            per_thread_st_ipc: result.per_thread_st_ipc.clone(),
            allocation: None,
            num_cores: None,
            core_assignments: None,
            per_core_ipc: None,
            per_core_stp: None,
            selector: None,
            candidates: None,
            policy_residency: None,
            sampled: Some(SampledCellStats {
                windows: result.windows,
                detailed_fraction: result.detailed_fraction,
                stp: result.stp,
                antt: result.antt,
                total_ipc: result.total_ipc,
            }),
        }
    }

    /// Builds a cell from a chip-level [`ChipWorkloadResult`].
    pub(crate) fn cell_from_chip_result(
        result: &ChipWorkloadResult,
        benchmarks: &[String],
        group: &str,
        parameter: Option<u64>,
    ) -> PolicyCell {
        PolicyCell {
            policy: result.policy,
            workload: result.workload.clone(),
            benchmarks: benchmarks.to_vec(),
            group: group.to_string(),
            parameter,
            stp: result.stp,
            antt: result.antt,
            per_thread_ipc: result.per_thread_ipc.clone(),
            per_thread_st_ipc: result.per_thread_st_ipc.clone(),
            allocation: Some(result.allocation),
            num_cores: Some(result.num_cores),
            core_assignments: Some(result.core_assignments.clone()),
            per_core_ipc: Some(result.per_core_ipc.clone()),
            per_core_stp: Some(result.per_core_stp.clone()),
            selector: None,
            candidates: None,
            policy_residency: None,
            sampled: None,
        }
    }

    /// Builds a cell from an adaptive-engine [`AdaptiveWorkloadResult`]. The
    /// cell's `policy` column carries the *initial* policy
    /// (`candidates[0]`); the selector/candidates/residency columns describe
    /// the dynamic behaviour.
    pub(crate) fn cell_from_adaptive_result(
        result: &AdaptiveWorkloadResult,
        benchmarks: &[String],
        group: &str,
        parameter: Option<u64>,
    ) -> PolicyCell {
        PolicyCell {
            policy: *result
                .candidates
                .first()
                // analyze: allow(panic-policy) reason="documented panic: spec validation rejects empty candidate sets before any cell is built"
                .expect("validated adaptive cell has candidates"),
            workload: result.workload.clone(),
            benchmarks: benchmarks.to_vec(),
            group: group.to_string(),
            parameter,
            stp: result.stp,
            antt: result.antt,
            per_thread_ipc: result.per_thread_ipc.clone(),
            per_thread_st_ipc: result.per_thread_st_ipc.clone(),
            allocation: result.allocation,
            num_cores: result.num_cores,
            core_assignments: result.core_assignments.clone(),
            per_core_ipc: result.per_core_ipc.clone(),
            per_core_stp: result.per_core_stp.clone(),
            selector: Some(result.selector),
            candidates: Some(result.candidates.clone()),
            policy_residency: Some(result.policy_residency.clone()),
            sampled: None,
        }
    }

    /// Computes the per-(sweep point, policy, group) and per-(sweep point,
    /// policy) aggregates from `cells`, preserving the given policy order.
    pub(crate) fn summarize(
        cells: &[PolicyCell],
        policies: &[FetchPolicyKind],
        parameters: &[Option<u64>],
    ) -> Vec<SummaryRow> {
        let mut groups: Vec<Option<String>> = Vec::new();
        for cell in cells {
            if !groups
                .iter()
                .any(|g| g.as_deref() == Some(cell.group.as_str()))
            {
                groups.push(Some(cell.group.clone()));
            }
        }
        // Always emit the all-workloads aggregate (`group: None`) so
        // consumers can rely on its presence, matching the legacy
        // ungrouped entry points.
        groups.push(None);
        // Chip grids add an allocation axis; classic grids have the single
        // `None` allocation, keeping their summary rows unchanged.
        let mut allocations: Vec<Option<AllocationPolicyKind>> = Vec::new();
        for cell in cells {
            if !allocations.contains(&cell.allocation) {
                allocations.push(cell.allocation);
            }
        }
        if allocations.is_empty() {
            allocations.push(None);
        }
        // Adaptive grids add a (selector, candidate-set) axis; classic grids
        // have the single `None` combination, keeping their rows unchanged.
        type SelectorCombo = (Option<SelectorKind>, Option<Vec<FetchPolicyKind>>);
        let mut selectors: Vec<SelectorCombo> = Vec::new();
        for cell in cells {
            let combo = (cell.selector, cell.candidates.clone());
            if !selectors.contains(&combo) {
                selectors.push(combo);
            }
        }
        if selectors.is_empty() {
            selectors.push((None, None));
        }
        let mut rows = Vec::new();
        for &parameter in parameters {
            for &policy in policies {
                for &allocation in &allocations {
                    for (selector, candidates) in &selectors {
                        for group in &groups {
                            let slice: Vec<&PolicyCell> = cells
                                .iter()
                                .filter(|c| {
                                    c.parameter == parameter
                                        && c.policy == policy
                                        && c.allocation == allocation
                                        && c.selector == *selector
                                        && c.candidates == *candidates
                                        && group.as_deref().is_none_or(|g| c.group == g)
                                })
                                .collect();
                            if slice.is_empty() {
                                continue;
                            }
                            let stps: Vec<f64> = slice.iter().map(|c| c.stp).collect();
                            let antts: Vec<f64> = slice.iter().map(|c| c.antt).collect();
                            rows.push(SummaryRow {
                                policy,
                                group: group.clone(),
                                parameter,
                                allocation,
                                selector: *selector,
                                candidates: candidates.clone(),
                                workloads: slice.len() as u64,
                                avg_stp: metrics::harmonic_mean(&stps),
                                avg_antt: metrics::arithmetic_mean(&antts),
                            });
                        }
                    }
                }
            }
        }
        rows
    }

    /// Serializes the report as pretty JSON.
    ///
    /// # Errors
    ///
    /// Never fails for reports produced by the engine.
    pub fn to_json(&self) -> Result<String, SimError> {
        serde_json::to_string_pretty(self)
            .map_err(|e| SimError::internal(format!("report JSON serialization: {e}")))
    }

    /// Serializes the report as TOML.
    ///
    /// # Errors
    ///
    /// Never fails for reports produced by the engine.
    pub fn to_toml(&self) -> Result<String, SimError> {
        toml::to_string(self)
            .map_err(|e| SimError::internal(format!("report TOML serialization: {e}")))
    }

    /// Formats the report as aligned, human-readable text.
    pub fn format_text(&self) -> String {
        let mut out = format!(
            "experiment: {} ({})\nscale: {} instructions/thread, {} warm-up, seed {}\n\
             engine: {} threads, {} reference runs, {} ms\n",
            self.experiment,
            if self.paper_ref.is_empty() {
                "custom"
            } else {
                &self.paper_ref
            },
            self.scale.instructions_per_thread,
            self.scale.warmup_instructions,
            self.scale.seed,
            self.threads_used,
            self.reference_runs,
            self.wall_ms,
        );
        if let Some(checkpoints) = &self.checkpoints {
            out.push_str(&format!(
                "sampling: {} warm checkpoint{} captured, {} reused\n",
                checkpoints.captures,
                if checkpoints.captures == 1 { "" } else { "s" },
                checkpoints.hits,
            ));
        }
        // Fault-free runs keep the historical text output; anything else
        // leads with the health verdict and the failed cells.
        if let Some(health) = &self.health {
            if !health.is_complete() {
                out.push_str(&format!(
                    "health: {} ({} of {} cells completed, {} failed)\n",
                    health.status.name(),
                    health.completed_cells,
                    health.planned_cells,
                    health.failed_cells,
                ));
                if let Some(outcomes) = &self.cell_outcomes {
                    for outcome in outcomes.iter().filter(|o| !o.ok) {
                        let attempts = outcome.attempts.unwrap_or(0);
                        let error = outcome
                            .error
                            .as_ref()
                            .map_or_else(|| "unknown error".to_string(), |e| e.to_string());
                        out.push_str(&format!(
                            "  cell {} [{}]: {error} (after {attempts} attempt{})\n",
                            outcome.cell,
                            outcome.label,
                            if attempts == 1 { "" } else { "s" },
                        ));
                    }
                }
            }
        }
        // Chip reports get an extra allocation column (and an
        // assignments-centric cell table); the shared columns are formatted
        // exactly once, with the chip-only segment spliced in as a
        // pre-rendered string.
        let chip_report = self.summaries.iter().any(|r| r.allocation.is_some())
            || self.policy_cells.iter().any(|c| c.allocation.is_some());
        let adaptive_report = self.summaries.iter().any(|r| r.selector.is_some())
            || self.policy_cells.iter().any(|c| c.selector.is_some());
        if !self.summaries.is_empty() {
            let alloc_header = if chip_report { "allocation    " } else { "" };
            let selector_header = if adaptive_report {
                "selector       "
            } else {
                ""
            };
            out.push_str(&format!(
                "\nsweep  group  policy                      {selector_header}{alloc_header}STP      ANTT  workloads\n"
            ));
            for row in &self.summaries {
                let alloc_col = if chip_report {
                    format!("{:<12}  ", row.allocation.map_or("-", |a| a.name()))
                } else {
                    String::new()
                };
                let selector_col = if adaptive_report {
                    format!("{:<13}  ", row.selector.map_or("-", |s| s.name()))
                } else {
                    String::new()
                };
                out.push_str(&format!(
                    "{:>5}  {:<5}  {:<26} {selector_col}{alloc_col}{:>6.3}  {:>8.3}  {:>9}\n",
                    row.parameter
                        .map_or_else(|| "-".to_string(), |p| p.to_string()),
                    row.group.as_deref().unwrap_or("all"),
                    row.policy.name(),
                    row.avg_stp,
                    row.avg_antt,
                    row.workloads,
                ));
            }
        }
        if !self.policy_cells.is_empty() {
            let (mid_header, ipc_header) = if chip_report {
                ("allocation    cores -> threads            ", "per-core IPC")
            } else {
                ("workload            ", "per-thread IPC")
            };
            let selector_header = if adaptive_report {
                "selector       "
            } else {
                ""
            };
            out.push_str(&format!(
                "\nsweep  group  policy                      {selector_header}{mid_header} {:>6}  {:>8}  {ipc_header}\n",
                "STP", "ANTT"
            ));
            for cell in &self.policy_cells {
                // The middle columns and the IPC breakdown are the only
                // chip/classic differences; render them first, then emit one
                // shared row format.
                let (mid, ipcs) = if chip_report {
                    let cores = cell
                        .core_assignments
                        .as_deref()
                        .map_or_else(|| cell.workload.clone(), |cores| cores.join(" | "));
                    let mid = format!(
                        "{:<12}  {:<28}",
                        cell.allocation.map_or("-", |a| a.name()),
                        cores
                    );
                    let ipcs: Vec<String> = cell
                        .per_core_ipc
                        .as_deref()
                        .unwrap_or(&[])
                        .iter()
                        .map(|v| format!("{v:.2}"))
                        .collect();
                    (mid, ipcs)
                } else {
                    let ipcs: Vec<String> = cell
                        .per_thread_ipc
                        .iter()
                        .map(|v| format!("{v:.2}"))
                        .collect();
                    (format!("{:<20}", cell.workload), ipcs)
                };
                let selector_col = if adaptive_report {
                    format!("{:<13}  ", cell.selector.map_or("-", |s| s.name()))
                } else {
                    String::new()
                };
                // Adaptive cells append their per-policy interval residency.
                let residency = cell
                    .policy_residency
                    .as_deref()
                    .filter(|r| !r.is_empty())
                    .map(|records| {
                        let parts: Vec<String> = records
                            .iter()
                            .map(|r| format!("{} {:.0}%", r.policy.name(), r.fraction * 100.0))
                            .collect();
                        format!("  [{}]", parts.join(" | "))
                    })
                    .unwrap_or_default();
                // Sampled cells append their statistical pedigree.
                let sampled = cell
                    .sampled
                    .as_ref()
                    .map(|s| format!("  [{} windows, STP ±{:.3}]", s.windows, s.stp.ci95))
                    .unwrap_or_default();
                out.push_str(&format!(
                    "{:>5}  {:<5}  {:<26} {selector_col}{mid} {:>6.3}  {:>8.3}  {}{residency}{sampled}\n",
                    cell.parameter
                        .map_or_else(|| "-".to_string(), |p| p.to_string()),
                    cell.group,
                    cell.policy.name(),
                    cell.stp,
                    cell.antt,
                    ipcs.join(" / "),
                ));
            }
        }
        if !self.bench_rows.is_empty() {
            out.push_str(&format!(
                "\n{}",
                format_bench_rows(self.kind, &self.bench_rows)
            ));
        }
        out
    }
}

fn format_bench_rows(kind: ExperimentKind, rows: &[BenchRow]) -> String {
    let mut out = String::new();
    match kind {
        ExperimentKind::Characterization => {
            out.push_str("benchmark      IPC  LLL/1K    MLP  MLP-impact  class (paper)\n");
            for r in rows {
                out.push_str(&format!(
                    "{:<12} {:>5.2} {:>7.2} {:>6.2} {:>10.1}%  {:<5} ({})\n",
                    r.benchmark,
                    r.ipc,
                    r.lll_per_kinst.unwrap_or(f64::NAN),
                    r.mlp.unwrap_or(f64::NAN),
                    r.mlp_impact.unwrap_or(f64::NAN) * 100.0,
                    r.class.as_deref().unwrap_or("?"),
                    r.paper_class.as_deref().unwrap_or("?"),
                ));
            }
        }
        ExperimentKind::PrefetcherImpact => {
            out.push_str("benchmark    no-pf IPC  with-pf IPC  speedup\n");
            for r in rows {
                out.push_str(&format!(
                    "{:<12} {:>9.3} {:>12.3} {:>7.1}%\n",
                    r.benchmark,
                    r.ipc_without_prefetch.unwrap_or(f64::NAN),
                    r.ipc,
                    (r.prefetch_speedup.unwrap_or(f64::NAN) - 1.0) * 100.0,
                ));
            }
        }
        ExperimentKind::PredictorAccuracy => {
            out.push_str("benchmark    LLL-acc  LLL-miss-acc  MLP-acc  dist-acc\n");
            for r in rows {
                out.push_str(&format!(
                    "{:<12} {:>6.1}% {:>12.1}% {:>7.1}% {:>8.1}%\n",
                    r.benchmark,
                    r.lll_accuracy.unwrap_or(f64::NAN) * 100.0,
                    r.lll_miss_accuracy.unwrap_or(f64::NAN) * 100.0,
                    r.mlp_accuracy.unwrap_or(f64::NAN) * 100.0,
                    r.mlp_distance_accuracy.unwrap_or(f64::NAN) * 100.0,
                ));
            }
        }
        ExperimentKind::MlpDistanceCdf => {
            out.push_str("benchmark      ≤32    ≤64    ≤96   ≤128\n");
            for r in rows {
                let cdf = r.mlp_distance_cdf.as_deref().unwrap_or(&[]);
                let fraction_within = |distance: u32| metrics::cdf_fraction_within(cdf, distance);
                out.push_str(&format!(
                    "{:<10} {:>5.0}% {:>5.0}% {:>5.0}% {:>5.0}%\n",
                    r.benchmark,
                    fraction_within(32) * 100.0,
                    fraction_within(64) * 100.0,
                    fraction_within(96) * 100.0,
                    fraction_within(128) * 100.0,
                ));
            }
        }
        ExperimentKind::PolicyGrid | ExperimentKind::ChipGrid | ExperimentKind::AdaptiveGrid => {}
    }
    out
}

/// Convenience: builds the skeleton report for `spec` (cells filled by the
/// engine).
pub(crate) fn empty_report(spec: &ExperimentSpec, threads: usize) -> ExperimentReport {
    ExperimentReport {
        experiment: spec.name.clone(),
        paper_ref: spec.paper_ref.clone(),
        kind: spec.kind,
        scale: spec.scale,
        threads_used: threads as u64,
        reference_runs: 0,
        wall_ms: 0,
        policy_cells: Vec::new(),
        summaries: Vec::new(),
        bench_rows: Vec::new(),
        cell_outcomes: None,
        health: None,
        checkpoints: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(policy: FetchPolicyKind, group: &str, parameter: Option<u64>, stp: f64) -> PolicyCell {
        PolicyCell {
            policy,
            workload: "a-b".to_string(),
            benchmarks: vec!["a".to_string(), "b".to_string()],
            group: group.to_string(),
            parameter,
            stp,
            antt: 2.0 / stp,
            per_thread_ipc: vec![0.5, 0.5],
            per_thread_st_ipc: vec![1.0, 1.0],
            allocation: None,
            num_cores: None,
            core_assignments: None,
            per_core_ipc: None,
            per_core_stp: None,
            selector: None,
            candidates: None,
            policy_residency: None,
            sampled: None,
        }
    }

    fn chip_cell(
        policy: FetchPolicyKind,
        allocation: AllocationPolicyKind,
        stp: f64,
    ) -> PolicyCell {
        PolicyCell {
            allocation: Some(allocation),
            num_cores: Some(2),
            core_assignments: Some(vec!["a+b".to_string(), "c+d".to_string()]),
            per_core_ipc: Some(vec![1.0, 0.8]),
            per_core_stp: Some(vec![stp / 2.0, stp / 2.0]),
            ..cell(policy, "MIX", None, stp)
        }
    }

    #[test]
    fn summaries_group_and_aggregate() {
        let cells = vec![
            cell(FetchPolicyKind::Icount, "ILP", None, 1.0),
            cell(FetchPolicyKind::Icount, "MLP", None, 2.0),
            cell(FetchPolicyKind::MlpFlush, "ILP", None, 1.5),
            cell(FetchPolicyKind::MlpFlush, "MLP", None, 2.5),
        ];
        let rows = ExperimentReport::summarize(
            &cells,
            &[FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush],
            &[None],
        );
        // 2 policies x (2 groups + overall).
        assert_eq!(rows.len(), 6);
        let overall_icount = rows
            .iter()
            .find(|r| r.policy == FetchPolicyKind::Icount && r.group.is_none())
            .unwrap();
        assert_eq!(overall_icount.workloads, 2);
        assert!((overall_icount.avg_stp - metrics::harmonic_mean(&[1.0, 2.0])).abs() < 1e-12);
    }

    #[test]
    fn summaries_respect_sweep_parameters() {
        let cells = vec![
            cell(FetchPolicyKind::Icount, "MLP", Some(200), 1.0),
            cell(FetchPolicyKind::Icount, "MLP", Some(800), 0.5),
        ];
        let rows = ExperimentReport::summarize(
            &cells,
            &[FetchPolicyKind::Icount],
            &[Some(200), Some(800)],
        );
        // Per parameter: one MLP-group row plus the overall aggregate.
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].parameter, Some(200));
        let overall_800 = rows
            .iter()
            .find(|r| r.parameter == Some(800) && r.group.is_none())
            .unwrap();
        assert!((overall_800.avg_stp - 0.5).abs() < 1e-12);
    }

    #[test]
    fn chip_summaries_split_by_allocation() {
        use AllocationPolicyKind::{FillFirst, RoundRobin};
        let cells = vec![
            chip_cell(FetchPolicyKind::Icount, RoundRobin, 1.0),
            chip_cell(FetchPolicyKind::Icount, FillFirst, 2.0),
            chip_cell(FetchPolicyKind::MlpFlush, RoundRobin, 1.5),
            chip_cell(FetchPolicyKind::MlpFlush, FillFirst, 2.5),
        ];
        let rows = ExperimentReport::summarize(
            &cells,
            &[FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush],
            &[None],
        );
        // 2 policies x 2 allocations x (1 group + overall).
        assert_eq!(rows.len(), 8);
        let ff = rows
            .iter()
            .find(|r| {
                r.policy == FetchPolicyKind::Icount
                    && r.allocation == Some(FillFirst)
                    && r.group.is_none()
            })
            .unwrap();
        assert_eq!(ff.workloads, 1);
        assert!((ff.avg_stp - 2.0).abs() < 1e-12);
    }

    #[test]
    fn chip_report_text_mentions_allocation_and_assignments() {
        let spec = crate::experiments::registry::ExperimentRegistry::builtin()
            .get("fig09_two_thread_policies")
            .unwrap()
            .clone();
        let mut report = empty_report(&spec, 1);
        report.policy_cells = vec![chip_cell(
            FetchPolicyKind::MlpFlush,
            AllocationPolicyKind::MlpBalanced,
            1.4,
        )];
        report.summaries = ExperimentReport::summarize(
            &report.policy_cells,
            &[FetchPolicyKind::MlpFlush],
            &[None],
        );
        let text = report.format_text();
        assert!(text.contains("mlp-balanced"), "{text}");
        assert!(text.contains("a+b | c+d"), "{text}");
    }

    #[test]
    fn report_serializes_to_json_and_toml_and_back() {
        let spec = crate::experiments::registry::ExperimentRegistry::builtin()
            .get("fig09_two_thread_policies")
            .unwrap()
            .clone();
        let mut report = empty_report(&spec, 2);
        report.policy_cells = vec![cell(FetchPolicyKind::Icount, "MLP", None, 1.2)];
        report.summaries =
            ExperimentReport::summarize(&report.policy_cells, &[FetchPolicyKind::Icount], &[None]);
        let json = report.to_json().unwrap();
        let from_json: ExperimentReport = serde_json::from_str(&json).unwrap();
        assert_eq!(from_json, report);
        let toml_text = report.to_toml().unwrap();
        let from_toml: ExperimentReport = toml::from_str(&toml_text).unwrap();
        assert_eq!(from_toml, report);
    }

    #[test]
    fn text_format_mentions_policies_and_workloads() {
        let mut report = ExperimentReport {
            experiment: "x".to_string(),
            paper_ref: "Figure 9".to_string(),
            kind: ExperimentKind::PolicyGrid,
            scale: RunScale::tiny(),
            threads_used: 1,
            reference_runs: 2,
            wall_ms: 1,
            policy_cells: vec![cell(FetchPolicyKind::MlpFlush, "MLP", None, 1.3)],
            summaries: Vec::new(),
            bench_rows: Vec::new(),
            cell_outcomes: None,
            health: None,
            checkpoints: None,
        };
        report.summaries = ExperimentReport::summarize(
            &report.policy_cells,
            &[FetchPolicyKind::MlpFlush],
            &[None],
        );
        let text = report.format_text();
        assert!(text.contains("mlp-flush"));
        assert!(text.contains("a-b"));
        assert!(text.contains("Figure 9"));
    }
}
