//! Figures 4–8: predictor and prefetcher characterization on single-threaded runs.

use smt_trace::spec;
use smt_types::{SimError, SmtConfig};

use crate::runner::{run_single_thread, RunScale};

/// One benchmark's predictor accuracy measurements (drives Figures 6, 7 and 8).
#[derive(Clone, Debug)]
pub struct PredictorAccuracyRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Long-latency load predictor accuracy over all loads (Figure 6).
    pub lll_accuracy: f64,
    /// Long-latency load predictor accuracy over actual misses only.
    pub lll_miss_accuracy: f64,
    /// Binary MLP prediction: fraction of true positives.
    pub mlp_true_positive: f64,
    /// Binary MLP prediction: fraction of true negatives.
    pub mlp_true_negative: f64,
    /// Binary MLP prediction: fraction of false positives.
    pub mlp_false_positive: f64,
    /// Binary MLP prediction: fraction of false negatives.
    pub mlp_false_negative: f64,
    /// MLP-distance "far enough" accuracy (Figure 8).
    pub mlp_distance_accuracy: f64,
}

/// One benchmark's prefetcher sensitivity (Figure 5).
#[derive(Clone, Debug)]
pub struct PrefetchRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Single-thread IPC without the hardware prefetcher.
    pub ipc_without_prefetch: f64,
    /// Single-thread IPC with the Table IV stream-buffer prefetcher.
    pub ipc_with_prefetch: f64,
}

impl PrefetchRow {
    /// Speedup of enabling the prefetcher.
    pub fn speedup(&self) -> f64 {
        if self.ipc_without_prefetch == 0.0 {
            1.0
        } else {
            self.ipc_with_prefetch / self.ipc_without_prefetch
        }
    }
}

/// One benchmark's predicted-MLP-distance CDF (Figure 4).
#[derive(Clone, Debug)]
pub struct MlpDistanceCdf {
    /// Benchmark name.
    pub benchmark: String,
    /// `(distance upper bound, cumulative fraction)` points.
    pub cdf: Vec<(u32, f64)>,
}

impl MlpDistanceCdf {
    /// Fraction of predicted MLP distances at or below `distance` instructions.
    pub fn fraction_within(&self, distance: u32) -> f64 {
        crate::metrics::cdf_fraction_within(&self.cdf, distance)
    }
}

/// Figure 4: cumulative distribution of the predicted MLP distance for the six
/// most MLP-intensive programs, on the 256-entry ROB / 128-entry LLSR baseline.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn figure4(scale: RunScale) -> Result<Vec<MlpDistanceCdf>, SimError> {
    // The paper's Figure 4 characterizes a 256-entry ROB processor with a
    // 128-entry LLSR; the runs are single threaded, so pin the LLSR length.
    let mut config = SmtConfig::baseline(1);
    config.llsr_length_override = Some(128);
    let mut out = Vec::new();
    for name in spec::figure4_benchmarks() {
        let stats = run_single_thread(name, &config, scale)?;
        out.push(MlpDistanceCdf {
            benchmark: name.to_string(),
            cdf: stats.threads[0].mlp_distance_cdf(),
        });
    }
    Ok(out)
}

/// Figure 5: single-thread IPC with and without the hardware prefetcher, for all
/// 26 benchmarks.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn figure5(scale: RunScale) -> Result<Vec<PrefetchRow>, SimError> {
    let mut rows = Vec::new();
    for profile in spec::all_benchmarks() {
        let without = run_single_thread(
            &profile.name,
            &SmtConfig::baseline(1).with_prefetcher(false),
            scale,
        )?;
        let with = run_single_thread(
            &profile.name,
            &SmtConfig::baseline(1).with_prefetcher(true),
            scale,
        )?;
        rows.push(PrefetchRow {
            benchmark: profile.name.clone(),
            ipc_without_prefetch: without.threads[0].ipc(without.cycles),
            ipc_with_prefetch: with.threads[0].ipc(with.cycles),
        });
    }
    Ok(rows)
}

/// Shared single-threaded run behind Figures 6–8.
///
/// Like the Table I characterization, the predictors are evaluated on the raw
/// miss stream (hardware prefetcher disabled): with the prefetcher enabled most
/// strided misses disappear and the remaining ones are, by construction, the
/// unpredictable residue.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn predictor_characterization(scale: RunScale) -> Result<Vec<PredictorAccuracyRow>, SimError> {
    let config = SmtConfig::baseline(1).with_prefetcher(false);
    let mut rows = Vec::new();
    for profile in spec::all_benchmarks() {
        let stats = run_single_thread(&profile.name, &config, scale)?;
        let t = &stats.threads[0];
        let mlp_total = (t.mlp_pred_true_positive
            + t.mlp_pred_true_negative
            + t.mlp_pred_false_positive
            + t.mlp_pred_false_negative)
            .max(1) as f64;
        rows.push(PredictorAccuracyRow {
            benchmark: profile.name.clone(),
            lll_accuracy: t.lll_predictor_accuracy(),
            lll_miss_accuracy: t.lll_predictor_miss_accuracy(),
            mlp_true_positive: t.mlp_pred_true_positive as f64 / mlp_total,
            mlp_true_negative: t.mlp_pred_true_negative as f64 / mlp_total,
            mlp_false_positive: t.mlp_pred_false_positive as f64 / mlp_total,
            mlp_false_negative: t.mlp_pred_false_negative as f64 / mlp_total,
            mlp_distance_accuracy: t.mlp_distance_accuracy(),
        });
    }
    Ok(rows)
}

/// Figure 6: long-latency load predictor accuracy per benchmark.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn figure6(scale: RunScale) -> Result<Vec<PredictorAccuracyRow>, SimError> {
    predictor_characterization(scale)
}

/// Figure 7: binary MLP prediction outcome fractions per benchmark.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn figure7(scale: RunScale) -> Result<Vec<PredictorAccuracyRow>, SimError> {
    predictor_characterization(scale)
}

/// Figure 8: MLP-distance "far enough" prediction accuracy per benchmark.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn figure8(scale: RunScale) -> Result<Vec<PredictorAccuracyRow>, SimError> {
    predictor_characterization(scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lll_predictor_is_accurate_on_memory_intensive_benchmark() {
        let config = SmtConfig::baseline(1).with_prefetcher(false);
        let stats = run_single_thread("swim", &config, RunScale::test()).unwrap();
        let acc = stats.threads[0].lll_predictor_accuracy();
        assert!(acc > 0.90, "swim long-latency predictor accuracy {acc}");
    }

    #[test]
    fn figure4_cdf_reaches_one_and_orders_lucas_before_mcf() {
        let cdfs = figure4(RunScale::test()).unwrap();
        assert_eq!(cdfs.len(), 6);
        let lucas = cdfs.iter().find(|c| c.benchmark == "lucas").unwrap();
        let mcf = cdfs.iter().find(|c| c.benchmark == "mcf").unwrap();
        assert!(!lucas.cdf.is_empty() && !mcf.cdf.is_empty());
        assert!((lucas.cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        // lucas exposes its MLP over short distances, mcf over long distances
        // (Section 4.2): at 48 instructions lucas has seen most of its MLP.
        assert!(
            lucas.fraction_within(48) > mcf.fraction_within(48),
            "lucas {} vs mcf {}",
            lucas.fraction_within(48),
            mcf.fraction_within(48)
        );
    }

    #[test]
    fn prefetcher_speeds_up_strided_benchmark() {
        let rows = figure5(RunScale::test()).unwrap();
        assert_eq!(rows.len(), 26);
        let swim = rows.iter().find(|r| r.benchmark == "swim").unwrap();
        assert!(
            swim.speedup() > 1.05,
            "swim should benefit from prefetching, speedup {}",
            swim.speedup()
        );
        let mcf = rows.iter().find(|r| r.benchmark == "mcf").unwrap();
        assert!(
            swim.speedup() > mcf.speedup(),
            "strided swim ({}) should gain more than pointer-chasing mcf ({})",
            swim.speedup(),
            mcf.speedup()
        );
    }
}
