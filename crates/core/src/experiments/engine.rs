//! Parallel execution engine for [`ExperimentSpec`]s.
//!
//! The engine expands a spec into its grid of independent cells
//! (sweep point × policy × workload for policy grids; one benchmark per cell
//! for single-thread kinds), runs the cells across OS threads with a shared
//! [`StReferenceCache`] (each single-threaded reference curve is simulated
//! exactly once, no matter how many cells need it), and assembles a uniform
//! [`ExperimentReport`]. Results are deterministic and independent of the
//! thread count: every cell's simulations are self-contained and seeded by
//! the spec's [`crate::runner::RunScale::seed`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant; // analyze: allow(determinism) reason="harness-side wall-clock for progress reporting; never feeds simulated state"

use smt_sched::AllocationPolicyKind;
use smt_types::config::FetchPolicyKind;
use smt_types::{SimError, SmtConfig};

use crate::experiments::characterization;
use crate::experiments::report::{empty_report, BenchRow, ExperimentReport, PolicyCell};
use crate::experiments::spec::{ExperimentKind, ExperimentSpec};
use crate::runner::{
    evaluate_adaptive_chip_workload_with_intensities, evaluate_adaptive_workload,
    evaluate_chip_workload_with_intensities, evaluate_workload_with, mlp_intensity,
    run_single_thread, RunScale, StReferenceCache, WorkloadResult,
};
use crate::workloads::Workload;

/// Number of worker threads the engine uses by default: the `SMT_THREADS`
/// environment variable when set, otherwise the machine's available
/// parallelism.
pub fn default_parallelism() -> usize {
    // analyze: allow(determinism) reason="worker-pool sizing only; results are identical at any thread count"
    if let Ok(text) = std::env::var("SMT_THREADS") {
        if let Ok(threads) = text.parse::<usize>() {
            if threads >= 1 {
                return threads;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f` over every item on up to `threads` OS threads, returning results
/// in item order. Items are claimed from a shared atomic counter, so uneven
/// cell costs balance across workers.
pub(crate) fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(&items[i]);
                *slots[i].lock().expect("result slot lock poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock poisoned")
                .expect("every slot is filled before the scope ends")
        })
        .collect()
}

/// Runs a policy × workload grid on one configuration, sharing `cache`
/// across all cells, and returns results as `grid[policy][workload]`.
///
/// This is the primitive behind both the legacy
/// [`crate::experiments::policies::policy_comparison`] entry point and the
/// spec engine; with `threads == 1` it reproduces the historical serial
/// behaviour exactly.
///
/// # Errors
///
/// Returns the first simulation error encountered, if any.
pub fn run_policy_grid(
    policies: &[FetchPolicyKind],
    workloads: &[Workload],
    config: &SmtConfig,
    scale: RunScale,
    cache: &StReferenceCache,
    threads: usize,
) -> Result<Vec<Vec<WorkloadResult>>, SimError> {
    let mut tasks: Vec<(FetchPolicyKind, &Workload)> = Vec::new();
    for &policy in policies {
        for workload in workloads {
            tasks.push((policy, workload));
        }
    }
    let outcomes = parallel_map(&tasks, threads, |(policy, workload)| {
        let mut cell_config = config.clone();
        cell_config.num_threads = workload.num_threads();
        evaluate_workload_with(&workload.benchmarks, *policy, &cell_config, scale, cache)
    });
    let mut grid: Vec<Vec<WorkloadResult>> = Vec::with_capacity(policies.len());
    let mut outcomes = outcomes.into_iter();
    for _ in policies {
        let mut row = Vec::with_capacity(workloads.len());
        for _ in workloads {
            row.push(outcomes.next().expect("one outcome per task")?);
        }
        grid.push(row);
    }
    Ok(grid)
}

/// Runs an experiment spec with the default thread count.
///
/// # Errors
///
/// Returns a validation error before anything is simulated, or the first
/// simulation error encountered.
pub fn run_spec(spec: &ExperimentSpec) -> Result<ExperimentReport, SimError> {
    run_spec_with_threads(spec, default_parallelism())
}

/// Runs an experiment spec on exactly `threads` worker threads.
///
/// # Errors
///
/// Returns a validation error before anything is simulated, or the first
/// simulation error encountered.
pub fn run_spec_with_threads(
    spec: &ExperimentSpec,
    threads: usize,
) -> Result<ExperimentReport, SimError> {
    spec.validate()?;
    let threads = threads.max(1);
    let start = Instant::now(); // analyze: allow(determinism) reason="elapsed-time reporting for the experiment harness, not simulated state"
    let cache = StReferenceCache::new();
    let mut report = empty_report(spec, threads);
    if spec.kind.is_single_thread() {
        report.bench_rows = run_bench_rows(spec, threads)?;
    } else {
        let (cells, summaries) = run_grid_cells(spec, threads, &cache)?;
        report.policy_cells = cells;
        report.summaries = summaries;
    }
    report.reference_runs = cache.reference_runs();
    report.wall_ms = start.elapsed().as_millis() as u64;
    Ok(report)
}

type GridOutcome = (Vec<PolicyCell>, Vec<crate::experiments::report::SummaryRow>);

fn run_grid_cells(
    spec: &ExperimentSpec,
    threads: usize,
    cache: &StReferenceCache,
) -> Result<GridOutcome, SimError> {
    if spec.kind == ExperimentKind::ChipGrid {
        return run_chip_cells(spec, threads, cache);
    }
    if spec.kind == ExperimentKind::AdaptiveGrid {
        return run_adaptive_cells(spec, threads, cache);
    }
    let workloads: Vec<Workload> = spec
        .workloads
        .iter()
        .map(|benchmarks| Workload::new(benchmarks.clone()))
        .collect::<Result<_, _>>()?;
    let sweep_points = spec.sweep_points();
    let mut tasks: Vec<(Option<u64>, FetchPolicyKind, &Workload)> = Vec::new();
    for &point in &sweep_points {
        for &policy in &spec.policies {
            for workload in &workloads {
                tasks.push((point, policy, workload));
            }
        }
    }
    let outcomes = parallel_map(&tasks, threads, |&(point, policy, workload)| {
        let config = spec.config_for(workload.num_threads(), point);
        evaluate_workload_with(&workload.benchmarks, policy, &config, spec.scale, cache)
    });
    let mut cells = Vec::with_capacity(tasks.len());
    for ((point, _, workload), outcome) in tasks.iter().zip(outcomes) {
        let result = outcome?;
        cells.push(ExperimentReport::cell_from_result(
            &result,
            &workload.benchmarks,
            workload.group.label(),
            *point,
        ));
    }
    let summaries = ExperimentReport::summarize(&cells, &spec.policies, &sweep_points);
    Ok((cells, summaries))
}

/// Runs a chip-grid spec: one cell per (sweep point × fetch policy ×
/// allocation × workload). Each distinct benchmark's MLP intensity is probed
/// exactly once (serially, at negligible probe scale) before the cells fan
/// out, so every cell sees identical placement inputs no matter how many
/// engine threads run.
fn run_chip_cells(
    spec: &ExperimentSpec,
    threads: usize,
    cache: &StReferenceCache,
) -> Result<GridOutcome, SimError> {
    let chip_spec = spec
        .chip
        .as_ref()
        .expect("validated chip grid has chip parameters");
    let workloads: Vec<Workload> = spec
        .workloads
        .iter()
        .map(|benchmarks| Workload::new(benchmarks.clone()))
        .collect::<Result<_, _>>()?;
    let sweep_points = spec.sweep_points();
    // Probe each distinct benchmark once; the probe normalizes to one thread,
    // so any workload's core configuration gives the same answer.
    let probe_config = spec.config_for(1, None);
    let mut intensities: HashMap<&str, f64> = HashMap::new();
    for workload in &workloads {
        for benchmark in &workload.benchmarks {
            if !intensities.contains_key(benchmark.as_str()) {
                let value = mlp_intensity(benchmark, &probe_config, spec.scale.seed)?;
                intensities.insert(benchmark, value);
            }
        }
    }
    type ChipTask<'a> = (
        Option<u64>,
        FetchPolicyKind,
        AllocationPolicyKind,
        &'a Workload,
    );
    let mut tasks: Vec<ChipTask> = Vec::new();
    for &point in &sweep_points {
        for &policy in &spec.policies {
            for &allocation in &chip_spec.allocations {
                for workload in &workloads {
                    tasks.push((point, policy, allocation, workload));
                }
            }
        }
    }
    let outcomes = parallel_map(&tasks, threads, |&(point, policy, allocation, workload)| {
        let chip_config = spec.chip_config_for(workload.num_threads(), point);
        let thread_intensities: Vec<f64> = workload
            .benchmarks
            .iter()
            .map(|b| intensities[b.as_str()])
            .collect();
        evaluate_chip_workload_with_intensities(
            &workload.benchmarks,
            &thread_intensities,
            policy,
            allocation,
            &chip_config,
            spec.scale,
            cache,
        )
    });
    let mut cells = Vec::with_capacity(tasks.len());
    for ((point, _, _, workload), outcome) in tasks.iter().zip(outcomes) {
        let result = outcome?;
        cells.push(ExperimentReport::cell_from_chip_result(
            &result,
            &workload.benchmarks,
            workload.group.label(),
            *point,
        ));
    }
    let summaries = ExperimentReport::summarize(&cells, &spec.policies, &sweep_points);
    Ok((cells, summaries))
}

/// Runs an adaptive-grid spec: one cell per (sweep point × selector ×
/// candidate-set × [allocation ×] workload). The allocation axis only exists
/// when the spec lifts the grid to chip level; machine-level grids have one
/// implicit `None` allocation. Chip grids probe each distinct benchmark's
/// MLP intensity exactly once, like [`run_chip_cells`].
fn run_adaptive_cells(
    spec: &ExperimentSpec,
    threads: usize,
    cache: &StReferenceCache,
) -> Result<GridOutcome, SimError> {
    let adaptive_spec = spec
        .adaptive
        .as_ref()
        .expect("validated adaptive grid has adaptive parameters");
    let workloads: Vec<Workload> = spec
        .workloads
        .iter()
        .map(|benchmarks| Workload::new(benchmarks.clone()))
        .collect::<Result<_, _>>()?;
    let sweep_points = spec.sweep_points();
    // Chip-level adaptive grids need per-benchmark MLP intensities for the
    // allocation policies; probe each distinct benchmark once, serially, so
    // every cell sees identical placement inputs at any engine thread count.
    let allocations: Vec<Option<AllocationPolicyKind>> = match &spec.chip {
        Some(chip) => chip.allocations.iter().copied().map(Some).collect(),
        None => vec![None],
    };
    // Only mlp-balanced placement reads the intensities; the probe runs are
    // skipped (zero-filled) when no allocation of the spec consumes them.
    let needs_probes = allocations
        .iter()
        .any(|a| matches!(a, Some(AllocationPolicyKind::MlpBalanced)));
    let mut intensities: HashMap<&str, f64> = HashMap::new();
    if spec.chip.is_some() {
        let probe_config = spec.config_for(1, None);
        for workload in &workloads {
            for benchmark in &workload.benchmarks {
                if !intensities.contains_key(benchmark.as_str()) {
                    let value = if needs_probes {
                        mlp_intensity(benchmark, &probe_config, spec.scale.seed)?
                    } else {
                        0.0
                    };
                    intensities.insert(benchmark, value);
                }
            }
        }
    }
    type AdaptiveTask<'a> = (
        Option<u64>,
        smt_types::SelectorKind,
        &'a [smt_types::config::FetchPolicyKind],
        Option<AllocationPolicyKind>,
        &'a Workload,
    );
    let mut tasks: Vec<AdaptiveTask> = Vec::new();
    for &point in &sweep_points {
        for &selector in &adaptive_spec.selectors {
            for candidates in &adaptive_spec.candidate_sets {
                for &allocation in &allocations {
                    for workload in &workloads {
                        tasks.push((point, selector, candidates, allocation, workload));
                    }
                }
            }
        }
    }
    let outcomes = parallel_map(
        &tasks,
        threads,
        |&(point, selector, candidates, allocation, workload)| {
            let adaptive = adaptive_spec.config_for(selector, candidates);
            match allocation {
                Some(allocation) => {
                    let chip_config = spec.chip_config_for(workload.num_threads(), point);
                    let thread_intensities: Vec<f64> = workload
                        .benchmarks
                        .iter()
                        .map(|b| intensities[b.as_str()])
                        .collect();
                    evaluate_adaptive_chip_workload_with_intensities(
                        &workload.benchmarks,
                        &thread_intensities,
                        &adaptive,
                        allocation,
                        &chip_config,
                        spec.scale,
                        cache,
                    )
                }
                None => {
                    let config = spec.config_for(workload.num_threads(), point);
                    evaluate_adaptive_workload(
                        &workload.benchmarks,
                        &adaptive,
                        &config,
                        spec.scale,
                        cache,
                    )
                }
            }
        },
    );
    let mut cells = Vec::with_capacity(tasks.len());
    for ((point, _, _, _, workload), outcome) in tasks.iter().zip(outcomes) {
        let result = outcome?;
        cells.push(ExperimentReport::cell_from_adaptive_result(
            &result,
            &workload.benchmarks,
            workload.group.label(),
            *point,
        ));
    }
    // The `policy` axis of an adaptive report is derived from the cells (the
    // initial policy of each candidate set), in first-seen order.
    let mut policies: Vec<smt_types::config::FetchPolicyKind> = Vec::new();
    for cell in &cells {
        if !policies.contains(&cell.policy) {
            policies.push(cell.policy);
        }
    }
    let summaries = ExperimentReport::summarize(&cells, &policies, &sweep_points);
    Ok((cells, summaries))
}

fn run_bench_rows(spec: &ExperimentSpec, threads: usize) -> Result<Vec<BenchRow>, SimError> {
    let benchmarks: Vec<&String> = spec.workloads.iter().map(|w| &w[0]).collect();
    let kind = spec.kind;
    let scale = spec.scale;
    let outcomes = parallel_map(&benchmarks, threads, |benchmark| {
        bench_row(kind, benchmark, scale)
    });
    outcomes.into_iter().collect()
}

/// Produces one single-thread characterization row. Each kind replicates the
/// exact configuration of its legacy `experiments::*` counterpart so that
/// registry specs and legacy entry points agree bit-for-bit.
fn bench_row(kind: ExperimentKind, benchmark: &str, scale: RunScale) -> Result<BenchRow, SimError> {
    match kind {
        ExperimentKind::Characterization => {
            let row = characterization::characterize(benchmark, scale)?;
            Ok(BenchRow {
                benchmark: row.benchmark,
                ipc: row.ipc,
                lll_per_kinst: Some(row.lll_per_kinst),
                mlp: Some(row.mlp),
                mlp_impact: Some(row.mlp_impact),
                class: Some(row.measured_class.label().to_string()),
                paper_class: Some(row.paper_class.label().to_string()),
                ..BenchRow::default()
            })
        }
        ExperimentKind::PrefetcherImpact => {
            let without = run_single_thread(
                benchmark,
                &SmtConfig::baseline(1).with_prefetcher(false),
                scale,
            )?;
            let with = run_single_thread(
                benchmark,
                &SmtConfig::baseline(1).with_prefetcher(true),
                scale,
            )?;
            let ipc_without = without.threads[0].ipc(without.cycles);
            let ipc_with = with.threads[0].ipc(with.cycles);
            Ok(BenchRow {
                benchmark: benchmark.to_string(),
                ipc: ipc_with,
                ipc_without_prefetch: Some(ipc_without),
                prefetch_speedup: Some(if ipc_without == 0.0 {
                    1.0
                } else {
                    ipc_with / ipc_without
                }),
                ..BenchRow::default()
            })
        }
        ExperimentKind::PredictorAccuracy => {
            let config = SmtConfig::baseline(1).with_prefetcher(false);
            let stats = run_single_thread(benchmark, &config, scale)?;
            let t = &stats.threads[0];
            Ok(BenchRow {
                benchmark: benchmark.to_string(),
                ipc: t.ipc(stats.cycles),
                lll_accuracy: Some(t.lll_predictor_accuracy()),
                lll_miss_accuracy: Some(t.lll_predictor_miss_accuracy()),
                mlp_accuracy: Some(t.mlp_predictor_accuracy()),
                mlp_distance_accuracy: Some(t.mlp_distance_accuracy()),
                ..BenchRow::default()
            })
        }
        ExperimentKind::MlpDistanceCdf => {
            // The paper's Figure 4 characterizes a 256-entry ROB processor
            // with a 128-entry LLSR (matching `experiments::figure4`).
            let mut config = SmtConfig::baseline(1);
            config.llsr_length_override = Some(128);
            let stats = run_single_thread(benchmark, &config, scale)?;
            let t = &stats.threads[0];
            Ok(BenchRow {
                benchmark: benchmark.to_string(),
                ipc: t.ipc(stats.cycles),
                mlp_distance_cdf: Some(t.mlp_distance_cdf()),
                ..BenchRow::default()
            })
        }
        ExperimentKind::PolicyGrid | ExperimentKind::ChipGrid | ExperimentKind::AdaptiveGrid => {
            Err(SimError::internal("policy grids do not produce bench rows"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::spec::{SweepParameter, SweepSpec};

    fn tiny_grid_spec() -> ExperimentSpec {
        ExperimentSpec {
            name: "engine-test".to_string(),
            title: "engine test".to_string(),
            paper_ref: String::new(),
            kind: ExperimentKind::PolicyGrid,
            policies: vec![FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush],
            workloads: vec![
                vec!["mcf".to_string(), "swim".to_string()],
                vec!["gcc".to_string(), "gap".to_string()],
            ],
            sweep: None,
            overrides: None,
            chip: None,
            adaptive: None,
            scale: RunScale::tiny(),
        }
    }

    #[test]
    fn parallel_map_preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..57).collect();
        let doubled = parallel_map(&items, 4, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let serial = parallel_map(&items, 1, |&x| x * 2);
        assert_eq!(serial, doubled);
    }

    #[test]
    fn spec_results_are_thread_count_invariant() {
        let spec = tiny_grid_spec();
        let serial = run_spec_with_threads(&spec, 1).unwrap();
        let parallel = run_spec_with_threads(&spec, 4).unwrap();
        assert_eq!(serial.policy_cells, parallel.policy_cells);
        assert_eq!(serial.summaries, parallel.summaries);
        assert_eq!(serial.reference_runs, parallel.reference_runs);
    }

    #[test]
    fn grid_report_has_expected_shape() {
        let spec = tiny_grid_spec();
        let report = run_spec_with_threads(&spec, 2).unwrap();
        // 2 policies x 2 workloads.
        assert_eq!(report.policy_cells.len(), 4);
        assert!(report.bench_rows.is_empty());
        // Reference runs: one per distinct benchmark (config identical across
        // policies).
        assert_eq!(report.reference_runs, 4);
        assert!(report.summaries.iter().any(|s| s.group.is_none()));
        for cell in &report.policy_cells {
            assert!(cell.stp > 0.0 && cell.antt > 0.0);
        }
    }

    #[test]
    fn sweep_produces_cells_per_point() {
        let mut spec = tiny_grid_spec();
        spec.policies = vec![FetchPolicyKind::Icount];
        spec.workloads = vec![vec!["mcf".to_string(), "swim".to_string()]];
        spec.sweep = Some(SweepSpec {
            parameter: SweepParameter::MemoryLatency,
            values: vec![200, 800],
        });
        let report = run_spec_with_threads(&spec, 2).unwrap();
        assert_eq!(report.policy_cells.len(), 2);
        assert_eq!(report.policy_cells[0].parameter, Some(200));
        assert_eq!(report.policy_cells[1].parameter, Some(800));
        // Different memory latencies need distinct reference curves.
        assert_eq!(report.reference_runs, 4);
    }

    #[test]
    fn single_thread_spec_produces_bench_rows() {
        let spec = ExperimentSpec {
            name: "char-test".to_string(),
            title: "characterization test".to_string(),
            paper_ref: String::new(),
            kind: ExperimentKind::Characterization,
            policies: vec![],
            workloads: vec![vec!["mcf".to_string()], vec!["gcc".to_string()]],
            sweep: None,
            overrides: None,
            chip: None,
            adaptive: None,
            scale: RunScale::tiny(),
        };
        let report = run_spec_with_threads(&spec, 2).unwrap();
        assert_eq!(report.bench_rows.len(), 2);
        assert!(report.policy_cells.is_empty());
        assert_eq!(report.bench_rows[0].benchmark, "mcf");
        assert!(report.bench_rows[0].lll_per_kinst.unwrap() > 0.0);
    }

    fn tiny_chip_spec() -> ExperimentSpec {
        ExperimentSpec {
            name: "chip-engine-test".to_string(),
            title: "chip engine test".to_string(),
            paper_ref: String::new(),
            kind: ExperimentKind::ChipGrid,
            policies: vec![FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush],
            workloads: vec![vec![
                "mcf".to_string(),
                "swim".to_string(),
                "gcc".to_string(),
                "gap".to_string(),
            ]],
            sweep: None,
            overrides: None,
            chip: Some(crate::experiments::spec::ChipSpec {
                num_cores: 2,
                allocations: vec![
                    AllocationPolicyKind::RoundRobin,
                    AllocationPolicyKind::FillFirst,
                ],
                bus_bytes_per_cycle: 16,
                shared_llc: None,
            }),
            adaptive: None,
            scale: RunScale::tiny(),
        }
    }

    #[test]
    fn chip_grid_produces_policy_by_allocation_cells() {
        let report = run_spec_with_threads(&tiny_chip_spec(), 2).unwrap();
        // 2 policies x 2 allocations x 1 workload.
        assert_eq!(report.policy_cells.len(), 4);
        for cell in &report.policy_cells {
            assert!(cell.allocation.is_some());
            assert_eq!(cell.num_cores, Some(2));
            assert_eq!(cell.core_assignments.as_ref().unwrap().len(), 2);
            assert_eq!(cell.per_core_ipc.as_ref().unwrap().len(), 2);
            assert!(cell.stp > 0.0 && cell.antt > 0.0);
        }
        // Allocation axis shows up in the summaries.
        assert!(report
            .summaries
            .iter()
            .any(|r| r.allocation == Some(AllocationPolicyKind::FillFirst)));
    }

    #[test]
    fn chip_grid_results_are_thread_count_invariant() {
        let spec = tiny_chip_spec();
        let serial = run_spec_with_threads(&spec, 1).unwrap();
        let parallel = run_spec_with_threads(&spec, 4).unwrap();
        assert_eq!(serial.policy_cells, parallel.policy_cells);
        assert_eq!(serial.summaries, parallel.summaries);
    }

    #[test]
    fn invalid_spec_is_rejected_before_running() {
        let mut spec = tiny_grid_spec();
        spec.policies.clear();
        assert!(run_spec(&spec).is_err());
    }
}
