//! Resilient parallel execution engine for [`ExperimentSpec`]s.
//!
//! The engine expands a spec into its grid of independent cells
//! (sweep point × policy × workload for policy grids; one benchmark per cell
//! for single-thread kinds), runs the cells across OS threads with a shared
//! [`StReferenceCache`] (each single-threaded reference curve is simulated
//! exactly once, no matter how many cells need it), and assembles a uniform
//! [`ExperimentReport`]. Results are deterministic and independent of the
//! thread count: every cell's simulations are self-contained and seeded by
//! the spec's [`crate::runner::RunScale::seed`].
//!
//! # Resilience
//!
//! Every cell runs inside an isolation boundary ([`std::panic::catch_unwind`]
//! plus a quiet panic hook), so one panicking cell is quarantined as a
//! [`CellOutcome`] failure while the rest of the grid keeps draining.
//! A [`RunPolicy`] adds bounded retries with capped exponential backoff, a
//! wall-clock watchdog deadline, a deterministic simulated-cycle deadline
//! (via [`RunScale::max_cycles`]), optional fail-fast, and a deterministic
//! fault-injection hook ([`smt_resil::FaultPlan`]) for chaos testing. The
//! report degrades gracefully: completed cells are kept, failures are
//! recorded per cell, and [`RunHealth`] classifies the whole run.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, Once, PoisonError};
use std::time::Duration;
use std::time::Instant; // analyze: allow(determinism) reason="harness-side wall-clock for progress reporting; never feeds simulated state"

use smt_resil::FaultInjector;
use smt_sched::AllocationPolicyKind;
use smt_types::config::FetchPolicyKind;
use smt_types::{CellError, CellOutcome, RunHealth, SimError, SmtConfig};

use crate::experiments::characterization;
use crate::experiments::report::{
    empty_report, BenchRow, CheckpointSummary, ExperimentReport, PolicyCell,
};
use crate::experiments::spec::{ExperimentKind, ExperimentSpec};
use crate::runner::{
    evaluate_adaptive_chip_workload_with_intensities, evaluate_adaptive_workload,
    evaluate_chip_workload_with_intensities, evaluate_workload_sampled, evaluate_workload_with,
    mlp_intensity, run_single_thread, CheckpointCache, RunScale, StReferenceCache, WorkloadResult,
};
use crate::workloads::Workload;

/// Number of worker threads the engine uses by default: the `SMT_THREADS`
/// environment variable when set, otherwise the machine's available
/// parallelism.
pub fn default_parallelism() -> usize {
    // analyze: allow(determinism) reason="worker-pool sizing only; results are identical at any thread count"
    if let Ok(text) = std::env::var("SMT_THREADS") {
        if let Ok(threads) = text.parse::<usize>() {
            if threads >= 1 {
                return threads;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// How the engine shields a run from failing cells: retry budget, backoff
/// shape, deadlines, fail-fast, and the optional deterministic fault plan.
///
/// The zero-configuration default retries each failed cell once with a few
/// milliseconds of backoff and no deadlines — exactly the behaviour a
/// fault-free run cannot observe, because successful cells record neither
/// retries nor errors in the report.
#[derive(Clone, PartialEq, Debug)]
pub struct RunPolicy {
    /// Retries per cell after the first attempt (`max_retries = 0` means one
    /// attempt, no retry). Only retryable errors (panics, deadlines,
    /// injected faults) consume the budget; deterministic simulation errors
    /// fail immediately.
    pub max_retries: u64,
    /// Wall-clock budget per cell attempt, enforced by a watchdog thread.
    /// `None` disables the wall-clock deadline.
    pub cell_timeout_ms: Option<u64>,
    /// Deterministic simulated-cycle budget per cell, checked inside the
    /// simulator step loop. A cell that hits the cap before any thread
    /// commits its instruction budget fails with a deadline error.
    pub max_cell_cycles: Option<u64>,
    /// Abort remaining cells after the first permanent failure. Skipped
    /// cells are reported as failed with a `skipped` error. Which cells are
    /// skipped depends on scheduling when `threads > 1`.
    pub fail_fast: bool,
    /// Base backoff before the first retry, in milliseconds.
    pub backoff_base_ms: u64,
    /// Upper bound on any single backoff sleep, in milliseconds.
    pub backoff_cap_ms: u64,
    /// Deterministic fault plan evaluated at the engine's injection points
    /// (`cell-start`, `cell-finish`). `None` injects nothing.
    pub fault_plan: Option<smt_resil::FaultPlan>,
}

impl Default for RunPolicy {
    fn default() -> Self {
        RunPolicy {
            max_retries: 1,
            cell_timeout_ms: None,
            max_cell_cycles: None,
            fail_fast: false,
            backoff_base_ms: 2,
            backoff_cap_ms: 250,
            fault_plan: None,
        }
    }
}

impl RunPolicy {
    /// Builds the effective policy for a spec: the engine defaults with every
    /// field the spec's optional `resilience` section sets layered on top.
    pub fn from_spec(spec: &ExperimentSpec) -> Self {
        let mut policy = RunPolicy::default();
        if let Some(resilience) = &spec.resilience {
            if let Some(v) = resilience.max_retries {
                policy.max_retries = v;
            }
            if resilience.cell_timeout_ms.is_some() {
                policy.cell_timeout_ms = resilience.cell_timeout_ms;
            }
            if resilience.max_cell_cycles.is_some() {
                policy.max_cell_cycles = resilience.max_cell_cycles;
            }
            if let Some(v) = resilience.fail_fast {
                policy.fail_fast = v;
            }
            if let Some(v) = resilience.backoff_base_ms {
                policy.backoff_base_ms = v;
            }
            if let Some(v) = resilience.backoff_cap_ms {
                policy.backoff_cap_ms = v;
            }
            if resilience.fault_plan.is_some() {
                policy.fault_plan = resilience.fault_plan.clone();
            }
        }
        policy
    }

    /// Total attempts per cell (the first run plus the retries).
    pub fn max_attempts(&self) -> u64 {
        self.max_retries.saturating_add(1)
    }

    /// Backoff before retry `attempt` (1-based) of `cell`: capped exponential
    /// growth from [`RunPolicy::backoff_base_ms`] plus a small deterministic
    /// per-cell jitter, so retried cells of one run do not stampede in
    /// lockstep. A pure function of `(cell, attempt)` — never wall clock.
    pub fn backoff_ms(&self, cell: u64, attempt: u64) -> u64 {
        let base = self.backoff_base_ms.max(1);
        let shift = attempt.saturating_sub(1).min(16) as u32;
        let raw = base.saturating_mul(1u64 << shift);
        let jitter = (cell.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 58) % base;
        raw.saturating_add(jitter)
            .min(self.backoff_cap_ms.max(base))
    }
}

thread_local! {
    /// True while the current thread is inside a cell's isolation boundary;
    /// the quiet panic hook suppresses default panic output for such panics
    /// because they are captured and reported as [`CellOutcome`] failures.
    static IN_CELL: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once per process) a panic hook that stays silent for panics
/// unwinding out of an engine cell and defers to the previous hook for
/// everything else.
fn install_cell_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if IN_CELL.with(Cell::get) {
                return;
            }
            previous(info);
        }));
    });
}

/// Renders a panic payload as text: the common `&str`/`String` payloads
/// verbatim, anything else as an opaque marker.
fn panic_payload(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Wall-clock watchdog for cell deadlines. One monitor thread owns the only
/// [`Instant`] and publishes a millisecond clock through an atomic; workers
/// stamp their cell's start against that clock and poll an `expired` flag.
struct Watchdog {
    /// Milliseconds since the monitor started, advanced only by the monitor.
    clock_ms: AtomicU64,
    /// Per cell: `clock_ms + 1` at attempt start, `0` when idle.
    started: Vec<AtomicU64>,
    /// Per cell: set by the monitor once the running attempt overruns.
    expired: Vec<AtomicBool>,
    /// Cells fully finished (all attempts done or skipped).
    finished: AtomicUsize,
    timeout_ms: u64,
}

impl Watchdog {
    fn new(cells: usize, timeout_ms: u64) -> Self {
        Watchdog {
            clock_ms: AtomicU64::new(0),
            started: (0..cells).map(|_| AtomicU64::new(0)).collect(),
            expired: (0..cells).map(|_| AtomicBool::new(false)).collect(),
            finished: AtomicUsize::new(0),
            timeout_ms,
        }
    }

    /// Stamps the start of an attempt on `cell` against the monitor's clock.
    fn arm(&self, cell: usize) {
        self.expired[cell].store(false, Ordering::Release);
        let stamp = self.clock_ms.load(Ordering::Acquire) + 1;
        self.started[cell].store(stamp, Ordering::Release);
    }

    /// Ends the attempt on `cell`; returns whether the monitor saw it overrun.
    fn disarm(&self, cell: usize) -> bool {
        self.started[cell].store(0, Ordering::Release);
        self.expired[cell].swap(false, Ordering::AcqRel)
    }

    /// Marks one cell as completely finished (success, failure, or skip).
    fn cell_done(&self) {
        self.finished.fetch_add(1, Ordering::AcqRel);
    }

    /// Monitor loop: advances the shared clock and flags overrunning cells
    /// until every cell is finished. This is the engine's single sanctioned
    /// wall-clock read; simulated state never observes it.
    fn monitor(&self) {
        // analyze: allow(determinism) reason="wall-clock watchdog for cell deadlines; flags harness overruns only and never feeds simulated state"
        let clock = Instant::now();
        let poll = (self.timeout_ms / 4).clamp(1, 25);
        while self.finished.load(Ordering::Acquire) < self.started.len() {
            std::thread::sleep(Duration::from_millis(poll));
            let now = clock.elapsed().as_millis() as u64;
            self.clock_ms.store(now, Ordering::Release);
            for cell in 0..self.started.len() {
                let stamp = self.started[cell].load(Ordering::Acquire);
                if stamp != 0 && now.saturating_sub(stamp - 1) > self.timeout_ms {
                    self.expired[cell].store(true, Ordering::Release);
                }
            }
        }
    }
}

/// The terminal outcome of one cell: its result (or the error of the last
/// attempt) and how many attempts were consumed.
struct CellRun<R> {
    result: Result<R, CellError>,
    attempts: u64,
}

/// One isolated attempt of a cell: fault injection at `cell-start`, the cell
/// body, fault injection at `cell-finish`, all under `catch_unwind` with the
/// quiet panic hook engaged.
fn attempt_cell<T, R>(
    cell: u64,
    attempt: u64,
    item: &T,
    injector: Option<&FaultInjector>,
    body: &(impl Fn(&T) -> Result<R, SimError> + Sync),
) -> Result<R, CellError> {
    IN_CELL.with(|flag| flag.set(true));
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Some(injector) = injector {
            if let Some(fault) = injector.check("cell-start", cell, attempt) {
                fault.trigger()?;
            }
        }
        let result = body(item).map_err(|e| match e {
            SimError::DeadlineExceeded { reason } => CellError::deadline(reason),
            other => CellError::invalid_spec(other.to_string()),
        })?;
        if let Some(injector) = injector {
            if let Some(fault) = injector.check("cell-finish", cell, attempt) {
                fault.trigger()?;
            }
        }
        Ok(result)
    }));
    IN_CELL.with(|flag| flag.set(false));
    match caught {
        Ok(outcome) => outcome,
        Err(payload) => Err(CellError::panic(panic_payload(payload))),
    }
}

/// Runs one cell to its terminal outcome: up to [`RunPolicy::max_attempts`]
/// isolated attempts with deterministic backoff between them, the watchdog
/// armed around each attempt, and `post_check` validating successful results
/// (the simulated-cycle deadline).
fn run_one_cell<T, R>(
    index: usize,
    item: &T,
    policy: &RunPolicy,
    injector: Option<&FaultInjector>,
    watchdog: Option<&Watchdog>,
    body: &(impl Fn(&T) -> Result<R, SimError> + Sync),
    post_check: &(impl Fn(&R) -> Option<CellError> + Sync),
) -> CellRun<R> {
    let cell = index as u64;
    let max_attempts = policy.max_attempts();
    let mut last_error = CellError::skipped("cell never ran");
    for attempt in 0..max_attempts {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(policy.backoff_ms(cell, attempt)));
        }
        if let Some(watchdog) = watchdog {
            watchdog.arm(index);
        }
        let outcome = attempt_cell(cell, attempt, item, injector, body);
        let expired = watchdog.is_some_and(|w| w.disarm(index));
        let outcome = match outcome {
            Ok(result) => {
                if expired {
                    Err(CellError::deadline(format!(
                        "cell exceeded its {} ms wall-clock budget",
                        policy.cell_timeout_ms.unwrap_or(0)
                    )))
                } else if let Some(error) = post_check(&result) {
                    Err(error)
                } else {
                    Ok(result)
                }
            }
            // A failed attempt keeps its own error even if it also overran.
            Err(error) => Err(error),
        };
        match outcome {
            Ok(result) => {
                return CellRun {
                    result: Ok(result),
                    attempts: attempt + 1,
                }
            }
            Err(error) => {
                let retryable = error.kind.is_retryable();
                last_error = error;
                if !retryable {
                    return CellRun {
                        result: Err(last_error),
                        attempts: attempt + 1,
                    };
                }
            }
        }
    }
    CellRun {
        result: Err(last_error),
        attempts: max_attempts,
    }
}

/// The resilient executor: runs every item as an isolated, retried,
/// deadline-guarded cell on up to `threads` workers, returning terminal
/// outcomes in item order. Fault firing is a pure function of
/// `(site, cell index, attempt)`, so outcomes are thread-count invariant
/// (except which cells a `fail_fast` abort skips).
fn run_cells<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    policy: &RunPolicy,
    body: impl Fn(&T) -> Result<R, SimError> + Sync,
    post_check: impl Fn(&R) -> Option<CellError> + Sync,
) -> Vec<CellRun<R>> {
    install_cell_panic_hook();
    let injector = policy.fault_plan.clone().map(FaultInjector::new);
    let injector = injector.as_ref();
    let watchdog = policy
        .cell_timeout_ms
        .map(|t| Watchdog::new(items.len(), t));
    let watchdog = watchdog.as_ref();
    let threads = threads.clamp(1, items.len().max(1));
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<CellRun<R>>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        if let Some(watchdog) = watchdog {
            scope.spawn(|| watchdog.monitor());
        }
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let run = if abort.load(Ordering::Acquire) {
                    CellRun {
                        result: Err(CellError::skipped(
                            "fail-fast: an earlier cell failed permanently",
                        )),
                        attempts: 0,
                    }
                } else {
                    let run =
                        run_one_cell(i, &items[i], policy, injector, watchdog, &body, &post_check);
                    if policy.fail_fast && run.result.is_err() {
                        abort.store(true, Ordering::Release);
                    }
                    run
                };
                if let Some(watchdog) = watchdog {
                    watchdog.cell_done();
                }
                // A cell that panicked on a previous holder cannot poison the
                // slot (panics are caught inside the cell), but recover anyway
                // rather than cascade.
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(run);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| CellRun {
                    result: Err(CellError::skipped("cell produced no result")),
                    attempts: 0,
                })
        })
        .collect()
}

/// Returns the deadline error for a multiprogram simulation that returned
/// without any thread committing the per-thread instruction budget. The step
/// loop's only early exit is its simulated-cycle cap, so an underrun means
/// the cap (explicit [`RunScale::max_cycles`] or the generous
/// [`crate::pipeline::SimOptions`] default) expired first.
fn budget_underrun_error(scale: RunScale, max_committed: u64) -> Option<CellError> {
    if max_committed < scale.instructions_per_thread {
        Some(CellError::deadline(format!(
            "simulated-cycle cap hit before any thread committed its {} instruction budget \
             (best thread committed {max_committed})",
            scale.instructions_per_thread
        )))
    } else {
        None
    }
}

/// Runs `f` over every item on up to `threads` OS threads, returning results
/// in item order. Items are claimed from a shared atomic counter, so uneven
/// cell costs balance across workers.
pub(crate) fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(&items[i]);
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                // analyze: allow(panic-policy) reason="documented panic: a worker that panicked would have propagated through thread::scope before the slots are read"
                .expect("every slot is filled before the scope ends")
        })
        .collect()
}

/// Runs a policy × workload grid on one configuration, sharing `cache`
/// across all cells, and returns results as `grid[policy][workload]`.
///
/// This is the primitive behind both the legacy
/// [`crate::experiments::policies::policy_comparison`] entry point and the
/// spec engine; with `threads == 1` it reproduces the historical serial
/// behaviour exactly.
///
/// # Errors
///
/// Returns the first simulation error encountered, if any.
pub fn run_policy_grid(
    policies: &[FetchPolicyKind],
    workloads: &[Workload],
    config: &SmtConfig,
    scale: RunScale,
    cache: &StReferenceCache,
    threads: usize,
) -> Result<Vec<Vec<WorkloadResult>>, SimError> {
    let mut tasks: Vec<(FetchPolicyKind, &Workload)> = Vec::new();
    for &policy in policies {
        for workload in workloads {
            tasks.push((policy, workload));
        }
    }
    let outcomes = parallel_map(&tasks, threads, |(policy, workload)| {
        let mut cell_config = config.clone();
        cell_config.num_threads = workload.num_threads();
        evaluate_workload_with(&workload.benchmarks, *policy, &cell_config, scale, cache)
    });
    let mut grid: Vec<Vec<WorkloadResult>> = Vec::with_capacity(policies.len());
    let mut outcomes = outcomes.into_iter();
    for _ in policies {
        let mut row = Vec::with_capacity(workloads.len());
        for _ in workloads {
            row.push(outcomes.next().ok_or_else(|| {
                SimError::internal("engine produced fewer outcomes than tasks")
            })??);
        }
        grid.push(row);
    }
    Ok(grid)
}

/// Runs an experiment spec with the default thread count.
///
/// # Errors
///
/// Returns a validation error before anything is simulated, or a setup error
/// (unknown benchmark, failed placement probe). Cell-level failures do not
/// error: they degrade the report (see [`ExperimentReport::health`]).
pub fn run_spec(spec: &ExperimentSpec) -> Result<ExperimentReport, SimError> {
    run_spec_with_threads(spec, default_parallelism())
}

/// Runs an experiment spec on exactly `threads` worker threads under the
/// resilience policy the spec itself declares ([`RunPolicy::from_spec`]).
///
/// # Errors
///
/// See [`run_spec`].
pub fn run_spec_with_threads(
    spec: &ExperimentSpec,
    threads: usize,
) -> Result<ExperimentReport, SimError> {
    run_spec_with_policy(spec, threads, &RunPolicy::from_spec(spec))
}

/// Runs an experiment spec on exactly `threads` worker threads under an
/// explicit resilience policy (overriding whatever the spec declares).
///
/// # Errors
///
/// See [`run_spec`].
pub fn run_spec_with_policy(
    spec: &ExperimentSpec,
    threads: usize,
    policy: &RunPolicy,
) -> Result<ExperimentReport, SimError> {
    spec.validate()?;
    let threads = threads.max(1);
    let start = Instant::now(); // analyze: allow(determinism) reason="elapsed-time reporting for the experiment harness, not simulated state"
                                // The simulated-cycle deadline rides on the spec's scale so every
                                // simulation a cell starts observes it inside its own step loop.
    let mut effective = spec.clone();
    if let Some(cap) = policy.max_cell_cycles {
        effective.scale.max_cycles = Some(cap);
    }
    let cache = StReferenceCache::new();
    let checkpoints = CheckpointCache::new();
    let mut report = empty_report(spec, threads);
    let outcomes = if spec.kind.is_single_thread() {
        let (rows, outcomes) = run_bench_rows(&effective, threads, policy);
        report.bench_rows = rows;
        outcomes
    } else {
        let (cells, summaries, outcomes) =
            run_grid_cells(&effective, threads, &cache, &checkpoints, policy)?;
        report.policy_cells = cells;
        report.summaries = summaries;
        outcomes
    };
    if spec.sampling.is_some() {
        report.checkpoints = Some(CheckpointSummary {
            captures: checkpoints.captures(),
            hits: checkpoints.hits(),
        });
    }
    report.health = Some(RunHealth::from_outcomes(&outcomes));
    report.cell_outcomes = Some(outcomes);
    report.reference_runs = cache.reference_runs();
    report.wall_ms = start.elapsed().as_millis() as u64;
    Ok(report)
}

type GridOutcome = (
    Vec<PolicyCell>,
    Vec<crate::experiments::report::SummaryRow>,
    Vec<CellOutcome>,
);

/// Prefix for a sweep-point axis in a cell label.
fn point_prefix(point: Option<u64>) -> String {
    point.map(|p| format!("{p}/")).unwrap_or_default()
}

fn run_grid_cells(
    spec: &ExperimentSpec,
    threads: usize,
    cache: &StReferenceCache,
    checkpoints: &CheckpointCache,
    policy: &RunPolicy,
) -> Result<GridOutcome, SimError> {
    if spec.kind == ExperimentKind::ChipGrid {
        return run_chip_cells(spec, threads, cache, policy);
    }
    if spec.kind == ExperimentKind::AdaptiveGrid {
        return run_adaptive_cells(spec, threads, cache, policy);
    }
    if spec.sampling.is_some() {
        return run_sampled_cells(spec, threads, cache, checkpoints, policy);
    }
    let workloads: Vec<Workload> = spec
        .workloads
        .iter()
        .map(|benchmarks| Workload::new(benchmarks.clone()))
        .collect::<Result<_, _>>()?;
    let sweep_points = spec.sweep_points();
    let mut tasks: Vec<(Option<u64>, FetchPolicyKind, &Workload)> = Vec::new();
    for &point in &sweep_points {
        for &policy_kind in &spec.policies {
            for workload in &workloads {
                tasks.push((point, policy_kind, workload));
            }
        }
    }
    let runs = run_cells(
        &tasks,
        threads,
        policy,
        |&(point, policy_kind, workload)| {
            let config = spec.config_for(workload.num_threads(), point);
            evaluate_workload_with(
                &workload.benchmarks,
                policy_kind,
                &config,
                spec.scale,
                cache,
            )
        },
        |result| {
            let max_committed = result
                .mt_stats
                .threads
                .iter()
                .map(|t| t.committed_instructions)
                .max()
                .unwrap_or(0);
            budget_underrun_error(spec.scale, max_committed)
        },
    );
    let mut cells = Vec::with_capacity(tasks.len());
    let mut outcomes = Vec::with_capacity(tasks.len());
    for (index, ((point, policy_kind, workload), run)) in tasks.iter().zip(runs).enumerate() {
        let label = format!(
            "{}{}/{}",
            point_prefix(*point),
            policy_kind.name(),
            workload.benchmarks.join("-")
        );
        match run.result {
            Ok(result) => {
                cells.push(ExperimentReport::cell_from_result(
                    &result,
                    &workload.benchmarks,
                    workload.group.label(),
                    *point,
                ));
                outcomes.push(CellOutcome::success(index as u64, label));
            }
            Err(error) => {
                outcomes.push(CellOutcome::failure(
                    index as u64,
                    label,
                    error,
                    run.attempts,
                ));
            }
        }
    }
    let summaries = ExperimentReport::summarize(&cells, &spec.policies, &sweep_points);
    Ok((cells, summaries, outcomes))
}

/// Runs a sampled policy grid: the same (sweep point × policy × workload)
/// cell lattice as the exact path, but every cell is evaluated with
/// SMARTS-style fast-forward/measure interleaving
/// ([`evaluate_workload_sampled`]). All cells share one [`CheckpointCache`]:
/// the functional warm-up prefix never consults the fetch policy, so every
/// policy of a grid restores the same per-workload warm checkpoint instead of
/// re-simulating the prefix.
fn run_sampled_cells(
    spec: &ExperimentSpec,
    threads: usize,
    cache: &StReferenceCache,
    checkpoints: &CheckpointCache,
    policy: &RunPolicy,
) -> Result<GridOutcome, SimError> {
    let sampling = spec
        .sampling
        .as_ref()
        .ok_or_else(|| SimError::internal("sampled grid lost its sampling parameters"))?
        .config();
    let workloads: Vec<Workload> = spec
        .workloads
        .iter()
        .map(|benchmarks| Workload::new(benchmarks.clone()))
        .collect::<Result<_, _>>()?;
    let sweep_points = spec.sweep_points();
    let mut tasks: Vec<(Option<u64>, FetchPolicyKind, &Workload)> = Vec::new();
    for &point in &sweep_points {
        for &policy_kind in &spec.policies {
            for workload in &workloads {
                tasks.push((point, policy_kind, workload));
            }
        }
    }
    let runs = run_cells(
        &tasks,
        threads,
        policy,
        |&(point, policy_kind, workload)| {
            let config = spec.config_for(workload.num_threads(), point);
            evaluate_workload_sampled(
                &workload.benchmarks,
                policy_kind,
                &config,
                spec.scale,
                &sampling,
                cache,
                checkpoints,
            )
        },
        // A sampled run that measured no complete window already failed with
        // a deadline error inside the cell body; nothing extra to check here.
        |_| None,
    );
    let mut cells = Vec::with_capacity(tasks.len());
    let mut outcomes = Vec::with_capacity(tasks.len());
    for (index, ((point, policy_kind, workload), run)) in tasks.iter().zip(runs).enumerate() {
        let label = format!(
            "{}{}/{}",
            point_prefix(*point),
            policy_kind.name(),
            workload.benchmarks.join("-")
        );
        match run.result {
            Ok(result) => {
                cells.push(ExperimentReport::cell_from_sampled_result(
                    &result,
                    &workload.benchmarks,
                    workload.group.label(),
                    *point,
                ));
                outcomes.push(CellOutcome::success(index as u64, label));
            }
            Err(error) => {
                outcomes.push(CellOutcome::failure(
                    index as u64,
                    label,
                    error,
                    run.attempts,
                ));
            }
        }
    }
    let summaries = ExperimentReport::summarize(&cells, &spec.policies, &sweep_points);
    Ok((cells, summaries, outcomes))
}

/// Runs a chip-grid spec: one cell per (sweep point × fetch policy ×
/// allocation × workload). Each distinct benchmark's MLP intensity is probed
/// exactly once (serially, at negligible probe scale) before the cells fan
/// out, so every cell sees identical placement inputs no matter how many
/// engine threads run. Probe failures are setup errors, not cell failures.
fn run_chip_cells(
    spec: &ExperimentSpec,
    threads: usize,
    cache: &StReferenceCache,
    policy: &RunPolicy,
) -> Result<GridOutcome, SimError> {
    let chip_spec = spec
        .chip
        .as_ref()
        .ok_or_else(|| SimError::internal("validated chip grid lost its chip parameters"))?;
    let workloads: Vec<Workload> = spec
        .workloads
        .iter()
        .map(|benchmarks| Workload::new(benchmarks.clone()))
        .collect::<Result<_, _>>()?;
    let sweep_points = spec.sweep_points();
    // Probe each distinct benchmark once; the probe normalizes to one thread,
    // so any workload's core configuration gives the same answer.
    let probe_config = spec.config_for(1, None);
    let mut intensities: HashMap<&str, f64> = HashMap::new();
    for workload in &workloads {
        for benchmark in &workload.benchmarks {
            if !intensities.contains_key(benchmark.as_str()) {
                let value = mlp_intensity(benchmark, &probe_config, spec.scale.seed)?;
                intensities.insert(benchmark, value);
            }
        }
    }
    type ChipTask<'a> = (
        Option<u64>,
        FetchPolicyKind,
        AllocationPolicyKind,
        &'a Workload,
    );
    let mut tasks: Vec<ChipTask> = Vec::new();
    for &point in &sweep_points {
        for &policy_kind in &spec.policies {
            for &allocation in &chip_spec.allocations {
                for workload in &workloads {
                    tasks.push((point, policy_kind, allocation, workload));
                }
            }
        }
    }
    let runs = run_cells(
        &tasks,
        threads,
        policy,
        |&(point, policy_kind, allocation, workload)| {
            let chip_config = spec.chip_config_for(workload.num_threads(), point);
            let thread_intensities: Vec<f64> = workload
                .benchmarks
                .iter()
                .map(|b| intensities[b.as_str()])
                .collect();
            evaluate_chip_workload_with_intensities(
                &workload.benchmarks,
                &thread_intensities,
                policy_kind,
                allocation,
                &chip_config,
                spec.scale,
                cache,
            )
        },
        |result| {
            let max_committed = result
                .chip_stats
                .threads()
                .map(|t| t.committed_instructions)
                .max()
                .unwrap_or(0);
            budget_underrun_error(spec.scale, max_committed)
        },
    );
    let mut cells = Vec::with_capacity(tasks.len());
    let mut outcomes = Vec::with_capacity(tasks.len());
    for (index, ((point, policy_kind, allocation, workload), run)) in
        tasks.iter().zip(runs).enumerate()
    {
        let label = format!(
            "{}{}/{}/{}",
            point_prefix(*point),
            policy_kind.name(),
            allocation.name(),
            workload.benchmarks.join("-")
        );
        match run.result {
            Ok(result) => {
                cells.push(ExperimentReport::cell_from_chip_result(
                    &result,
                    &workload.benchmarks,
                    workload.group.label(),
                    *point,
                ));
                outcomes.push(CellOutcome::success(index as u64, label));
            }
            Err(error) => {
                outcomes.push(CellOutcome::failure(
                    index as u64,
                    label,
                    error,
                    run.attempts,
                ));
            }
        }
    }
    let summaries = ExperimentReport::summarize(&cells, &spec.policies, &sweep_points);
    Ok((cells, summaries, outcomes))
}

/// Runs an adaptive-grid spec: one cell per (sweep point × selector ×
/// candidate-set × [allocation ×] workload). The allocation axis only exists
/// when the spec lifts the grid to chip level; machine-level grids have one
/// implicit `None` allocation. Chip grids probe each distinct benchmark's
/// MLP intensity exactly once, like [`run_chip_cells`].
fn run_adaptive_cells(
    spec: &ExperimentSpec,
    threads: usize,
    cache: &StReferenceCache,
    policy: &RunPolicy,
) -> Result<GridOutcome, SimError> {
    let adaptive_spec = spec.adaptive.as_ref().ok_or_else(|| {
        SimError::internal("validated adaptive grid lost its adaptive parameters")
    })?;
    let workloads: Vec<Workload> = spec
        .workloads
        .iter()
        .map(|benchmarks| Workload::new(benchmarks.clone()))
        .collect::<Result<_, _>>()?;
    let sweep_points = spec.sweep_points();
    // Chip-level adaptive grids need per-benchmark MLP intensities for the
    // allocation policies; probe each distinct benchmark once, serially, so
    // every cell sees identical placement inputs at any engine thread count.
    let allocations: Vec<Option<AllocationPolicyKind>> = match &spec.chip {
        Some(chip) => chip.allocations.iter().copied().map(Some).collect(),
        None => vec![None],
    };
    // Only mlp-balanced placement reads the intensities; the probe runs are
    // skipped (zero-filled) when no allocation of the spec consumes them.
    let needs_probes = allocations
        .iter()
        .any(|a| matches!(a, Some(AllocationPolicyKind::MlpBalanced)));
    let mut intensities: HashMap<&str, f64> = HashMap::new();
    if spec.chip.is_some() {
        let probe_config = spec.config_for(1, None);
        for workload in &workloads {
            for benchmark in &workload.benchmarks {
                if !intensities.contains_key(benchmark.as_str()) {
                    let value = if needs_probes {
                        mlp_intensity(benchmark, &probe_config, spec.scale.seed)?
                    } else {
                        0.0
                    };
                    intensities.insert(benchmark, value);
                }
            }
        }
    }
    type AdaptiveTask<'a> = (
        Option<u64>,
        smt_types::SelectorKind,
        &'a [smt_types::config::FetchPolicyKind],
        Option<AllocationPolicyKind>,
        &'a Workload,
    );
    let mut tasks: Vec<AdaptiveTask> = Vec::new();
    for &point in &sweep_points {
        for &selector in &adaptive_spec.selectors {
            for candidates in &adaptive_spec.candidate_sets {
                for &allocation in &allocations {
                    for workload in &workloads {
                        tasks.push((point, selector, candidates, allocation, workload));
                    }
                }
            }
        }
    }
    let runs = run_cells(
        &tasks,
        threads,
        policy,
        |&(point, selector, candidates, allocation, workload)| {
            let adaptive = adaptive_spec.config_for(selector, candidates);
            match allocation {
                Some(allocation) => {
                    let chip_config = spec.chip_config_for(workload.num_threads(), point);
                    let thread_intensities: Vec<f64> = workload
                        .benchmarks
                        .iter()
                        .map(|b| intensities[b.as_str()])
                        .collect();
                    evaluate_adaptive_chip_workload_with_intensities(
                        &workload.benchmarks,
                        &thread_intensities,
                        &adaptive,
                        allocation,
                        &chip_config,
                        spec.scale,
                        cache,
                    )
                }
                None => {
                    let config = spec.config_for(workload.num_threads(), point);
                    evaluate_adaptive_workload(
                        &workload.benchmarks,
                        &adaptive,
                        &config,
                        spec.scale,
                        cache,
                    )
                }
            }
        },
        |result| {
            // Chip-level adaptive results flatten per-core stats, so this is
            // the chip-wide best thread — conservative but never a false
            // positive for completed runs.
            let max_committed = result
                .mt_stats
                .threads
                .iter()
                .map(|t| t.committed_instructions)
                .max()
                .unwrap_or(0);
            budget_underrun_error(spec.scale, max_committed)
        },
    );
    let mut cells = Vec::with_capacity(tasks.len());
    let mut outcomes = Vec::with_capacity(tasks.len());
    for (index, ((point, selector, candidates, allocation, workload), run)) in
        tasks.iter().zip(runs).enumerate()
    {
        let candidate_names: Vec<&str> = candidates.iter().map(|c| c.name()).collect();
        let allocation_part = allocation
            .map(|a| format!("{}/", a.name()))
            .unwrap_or_default();
        let label = format!(
            "{}{}/{}/{}{}",
            point_prefix(*point),
            selector.name(),
            candidate_names.join("+"),
            allocation_part,
            workload.benchmarks.join("-")
        );
        match run.result {
            Ok(result) => {
                cells.push(ExperimentReport::cell_from_adaptive_result(
                    &result,
                    &workload.benchmarks,
                    workload.group.label(),
                    *point,
                ));
                outcomes.push(CellOutcome::success(index as u64, label));
            }
            Err(error) => {
                outcomes.push(CellOutcome::failure(
                    index as u64,
                    label,
                    error,
                    run.attempts,
                ));
            }
        }
    }
    // The `policy` axis of an adaptive report is derived from the cells (the
    // initial policy of each candidate set), in first-seen order.
    let mut policies: Vec<smt_types::config::FetchPolicyKind> = Vec::new();
    for cell in &cells {
        if !policies.contains(&cell.policy) {
            policies.push(cell.policy);
        }
    }
    let summaries = ExperimentReport::summarize(&cells, &policies, &sweep_points);
    Ok((cells, summaries, outcomes))
}

fn run_bench_rows(
    spec: &ExperimentSpec,
    threads: usize,
    policy: &RunPolicy,
) -> (Vec<BenchRow>, Vec<CellOutcome>) {
    let benchmarks: Vec<&String> = spec.workloads.iter().map(|w| &w[0]).collect();
    let kind = spec.kind;
    let scale = spec.scale;
    let runs = run_cells(
        &benchmarks,
        threads,
        policy,
        |benchmark| bench_row(kind, benchmark, scale),
        |_| None,
    );
    let mut rows = Vec::with_capacity(benchmarks.len());
    let mut outcomes = Vec::with_capacity(benchmarks.len());
    for (index, (benchmark, run)) in benchmarks.iter().zip(runs).enumerate() {
        match run.result {
            Ok(row) => {
                rows.push(row);
                outcomes.push(CellOutcome::success(index as u64, (*benchmark).clone()));
            }
            Err(error) => {
                outcomes.push(CellOutcome::failure(
                    index as u64,
                    (*benchmark).clone(),
                    error,
                    run.attempts,
                ));
            }
        }
    }
    (rows, outcomes)
}

/// Produces one single-thread characterization row. Each kind replicates the
/// exact configuration of its legacy `experiments::*` counterpart so that
/// registry specs and legacy entry points agree bit-for-bit.
fn bench_row(kind: ExperimentKind, benchmark: &str, scale: RunScale) -> Result<BenchRow, SimError> {
    match kind {
        ExperimentKind::Characterization => {
            let row = characterization::characterize(benchmark, scale)?;
            Ok(BenchRow {
                benchmark: row.benchmark,
                ipc: row.ipc,
                lll_per_kinst: Some(row.lll_per_kinst),
                mlp: Some(row.mlp),
                mlp_impact: Some(row.mlp_impact),
                class: Some(row.measured_class.label().to_string()),
                paper_class: Some(row.paper_class.label().to_string()),
                ..BenchRow::default()
            })
        }
        ExperimentKind::PrefetcherImpact => {
            let without = run_single_thread(
                benchmark,
                &SmtConfig::baseline(1).with_prefetcher(false),
                scale,
            )?;
            let with = run_single_thread(
                benchmark,
                &SmtConfig::baseline(1).with_prefetcher(true),
                scale,
            )?;
            let ipc_without = without.threads[0].ipc(without.cycles);
            let ipc_with = with.threads[0].ipc(with.cycles);
            Ok(BenchRow {
                benchmark: benchmark.to_string(),
                ipc: ipc_with,
                ipc_without_prefetch: Some(ipc_without),
                prefetch_speedup: Some(if ipc_without == 0.0 {
                    1.0
                } else {
                    ipc_with / ipc_without
                }),
                ..BenchRow::default()
            })
        }
        ExperimentKind::PredictorAccuracy => {
            let config = SmtConfig::baseline(1).with_prefetcher(false);
            let stats = run_single_thread(benchmark, &config, scale)?;
            let t = &stats.threads[0];
            Ok(BenchRow {
                benchmark: benchmark.to_string(),
                ipc: t.ipc(stats.cycles),
                lll_accuracy: Some(t.lll_predictor_accuracy()),
                lll_miss_accuracy: Some(t.lll_predictor_miss_accuracy()),
                mlp_accuracy: Some(t.mlp_predictor_accuracy()),
                mlp_distance_accuracy: Some(t.mlp_distance_accuracy()),
                ..BenchRow::default()
            })
        }
        ExperimentKind::MlpDistanceCdf => {
            // The paper's Figure 4 characterizes a 256-entry ROB processor
            // with a 128-entry LLSR (matching `experiments::figure4`).
            let mut config = SmtConfig::baseline(1);
            config.llsr_length_override = Some(128);
            let stats = run_single_thread(benchmark, &config, scale)?;
            let t = &stats.threads[0];
            Ok(BenchRow {
                benchmark: benchmark.to_string(),
                ipc: t.ipc(stats.cycles),
                mlp_distance_cdf: Some(t.mlp_distance_cdf()),
                ..BenchRow::default()
            })
        }
        ExperimentKind::PolicyGrid | ExperimentKind::ChipGrid | ExperimentKind::AdaptiveGrid => {
            Err(SimError::internal("policy grids do not produce bench rows"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::spec::{SamplingSpec, SweepParameter, SweepSpec};
    use smt_resil::{FaultAction, FaultPlan, FaultSpec};
    use smt_types::{CellErrorKind, RunHealthStatus};

    fn tiny_grid_spec() -> ExperimentSpec {
        ExperimentSpec {
            name: "engine-test".to_string(),
            title: "engine test".to_string(),
            paper_ref: String::new(),
            kind: ExperimentKind::PolicyGrid,
            policies: vec![FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush],
            workloads: vec![
                vec!["mcf".to_string(), "swim".to_string()],
                vec!["gcc".to_string(), "gap".to_string()],
            ],
            sweep: None,
            overrides: None,
            chip: None,
            adaptive: None,
            resilience: None,
            sampling: None,
            scale: RunScale::tiny(),
        }
    }

    fn fault(site: &str, action: FaultAction) -> FaultSpec {
        FaultSpec {
            site: site.to_string(),
            action,
            cell: None,
            hits: None,
            delay_ms: None,
            probability_pct: None,
            detail: None,
        }
    }

    /// Zeroes the only fields that legitimately differ between two runs of
    /// the same spec (wall time and the worker-thread count), so reports can
    /// be compared bit-for-bit.
    fn comparable(mut report: ExperimentReport) -> ExperimentReport {
        report.wall_ms = 0;
        report.threads_used = 0;
        report
    }

    #[test]
    fn parallel_map_preserves_order_and_covers_all_items() {
        let items: Vec<u64> = (0..57).collect();
        let doubled = parallel_map(&items, 4, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let serial = parallel_map(&items, 1, |&x| x * 2);
        assert_eq!(serial, doubled);
    }

    #[test]
    fn spec_results_are_thread_count_invariant() {
        let spec = tiny_grid_spec();
        let serial = run_spec_with_threads(&spec, 1).unwrap();
        let parallel = run_spec_with_threads(&spec, 4).unwrap();
        assert_eq!(serial.policy_cells, parallel.policy_cells);
        assert_eq!(serial.summaries, parallel.summaries);
        assert_eq!(serial.reference_runs, parallel.reference_runs);
        assert_eq!(serial.cell_outcomes, parallel.cell_outcomes);
        assert_eq!(serial.health, parallel.health);
    }

    #[test]
    fn grid_report_has_expected_shape() {
        let spec = tiny_grid_spec();
        let report = run_spec_with_threads(&spec, 2).unwrap();
        // 2 policies x 2 workloads.
        assert_eq!(report.policy_cells.len(), 4);
        assert!(report.bench_rows.is_empty());
        // Reference runs: one per distinct benchmark (config identical across
        // policies).
        assert_eq!(report.reference_runs, 4);
        assert!(report.summaries.iter().any(|s| s.group.is_none()));
        for cell in &report.policy_cells {
            assert!(cell.stp > 0.0 && cell.antt > 0.0);
        }
        let health = report.health.unwrap();
        assert_eq!(health.status, RunHealthStatus::Complete);
        assert_eq!(health.planned_cells, 4);
        assert_eq!(health.completed_cells, 4);
        let outcomes = report.cell_outcomes.unwrap();
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(|o| o.ok));
        assert_eq!(outcomes[0].label, "icount/mcf-swim");
    }

    #[test]
    fn sweep_produces_cells_per_point() {
        let mut spec = tiny_grid_spec();
        spec.policies = vec![FetchPolicyKind::Icount];
        spec.workloads = vec![vec!["mcf".to_string(), "swim".to_string()]];
        spec.sweep = Some(SweepSpec {
            parameter: SweepParameter::MemoryLatency,
            values: vec![200, 800],
        });
        let report = run_spec_with_threads(&spec, 2).unwrap();
        assert_eq!(report.policy_cells.len(), 2);
        assert_eq!(report.policy_cells[0].parameter, Some(200));
        assert_eq!(report.policy_cells[1].parameter, Some(800));
        // Different memory latencies need distinct reference curves.
        assert_eq!(report.reference_runs, 4);
    }

    #[test]
    fn single_thread_spec_produces_bench_rows() {
        let spec = ExperimentSpec {
            name: "char-test".to_string(),
            title: "characterization test".to_string(),
            paper_ref: String::new(),
            kind: ExperimentKind::Characterization,
            policies: vec![],
            workloads: vec![vec!["mcf".to_string()], vec!["gcc".to_string()]],
            sweep: None,
            overrides: None,
            chip: None,
            adaptive: None,
            resilience: None,
            sampling: None,
            scale: RunScale::tiny(),
        };
        let report = run_spec_with_threads(&spec, 2).unwrap();
        assert_eq!(report.bench_rows.len(), 2);
        assert!(report.policy_cells.is_empty());
        assert_eq!(report.bench_rows[0].benchmark, "mcf");
        assert!(report.bench_rows[0].lll_per_kinst.unwrap() > 0.0);
    }

    fn tiny_chip_spec() -> ExperimentSpec {
        ExperimentSpec {
            name: "chip-engine-test".to_string(),
            title: "chip engine test".to_string(),
            paper_ref: String::new(),
            kind: ExperimentKind::ChipGrid,
            policies: vec![FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush],
            workloads: vec![vec![
                "mcf".to_string(),
                "swim".to_string(),
                "gcc".to_string(),
                "gap".to_string(),
            ]],
            sweep: None,
            overrides: None,
            chip: Some(crate::experiments::spec::ChipSpec {
                num_cores: 2,
                allocations: vec![
                    AllocationPolicyKind::RoundRobin,
                    AllocationPolicyKind::FillFirst,
                ],
                bus_bytes_per_cycle: 16,
                shared_llc: None,
                chip_threads: None,
            }),
            adaptive: None,
            resilience: None,
            sampling: None,
            scale: RunScale::tiny(),
        }
    }

    #[test]
    fn chip_grid_produces_policy_by_allocation_cells() {
        let report = run_spec_with_threads(&tiny_chip_spec(), 2).unwrap();
        // 2 policies x 2 allocations x 1 workload.
        assert_eq!(report.policy_cells.len(), 4);
        for cell in &report.policy_cells {
            assert!(cell.allocation.is_some());
            assert_eq!(cell.num_cores, Some(2));
            assert_eq!(cell.core_assignments.as_ref().unwrap().len(), 2);
            assert_eq!(cell.per_core_ipc.as_ref().unwrap().len(), 2);
            assert!(cell.stp > 0.0 && cell.antt > 0.0);
        }
        // Allocation axis shows up in the summaries.
        assert!(report
            .summaries
            .iter()
            .any(|r| r.allocation == Some(AllocationPolicyKind::FillFirst)));
    }

    /// A sampled grid small enough for tests: the `test` scale budget with a
    /// cadence that still fits several measurement windows per cell.
    fn tiny_sampled_spec() -> ExperimentSpec {
        let mut spec = tiny_grid_spec();
        spec.scale = RunScale::test();
        spec.sampling = Some(SamplingSpec {
            skip_instructions: Some(0),
            ff_instructions: Some(2_000),
            warm_instructions: Some(200),
            measure_instructions: Some(500),
            min_windows: Some(3),
        });
        spec
    }

    #[test]
    fn sampled_grid_reports_estimates_and_shares_checkpoints() {
        let spec = tiny_sampled_spec();
        let report = run_spec_with_threads(&spec, 2).unwrap();
        // 2 policies x 2 workloads, all complete.
        assert_eq!(report.policy_cells.len(), 4);
        assert_eq!(
            report.health.as_ref().unwrap().status,
            RunHealthStatus::Complete
        );
        for cell in &report.policy_cells {
            let sampled = cell.sampled.as_ref().unwrap();
            assert!(sampled.windows >= 3);
            assert!(sampled.detailed_fraction < 0.3);
            // The shared metric columns carry the estimate means.
            assert_eq!(cell.stp, sampled.stp.mean);
            assert_eq!(cell.antt, sampled.antt.mean);
            assert!(cell.stp > 0.0 && cell.antt > 0.0);
        }
        // One warm checkpoint per workload: the functional warm-up prefix
        // never consults the fetch policy, so both policies share it.
        let checkpoints = report.checkpoints.unwrap();
        assert_eq!(checkpoints.captures, 2);
        assert_eq!(checkpoints.hits, 2);
        let text = report.format_text();
        assert!(text.contains("warm checkpoint"), "{text}");
        assert!(text.contains("windows, STP ±"), "{text}");
    }

    #[test]
    fn sampled_grid_results_are_thread_count_invariant() {
        let spec = tiny_sampled_spec();
        let serial = comparable(run_spec_with_threads(&spec, 1).unwrap());
        let parallel = comparable(run_spec_with_threads(&spec, 4).unwrap());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn chip_grid_results_are_thread_count_invariant() {
        let spec = tiny_chip_spec();
        let serial = run_spec_with_threads(&spec, 1).unwrap();
        let parallel = run_spec_with_threads(&spec, 4).unwrap();
        assert_eq!(serial.policy_cells, parallel.policy_cells);
        assert_eq!(serial.summaries, parallel.summaries);
    }

    #[test]
    fn invalid_spec_is_rejected_before_running() {
        let mut spec = tiny_grid_spec();
        spec.policies.clear();
        assert!(run_spec(&spec).is_err());
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let policy = RunPolicy {
            backoff_base_ms: 4,
            backoff_cap_ms: 20,
            ..RunPolicy::default()
        };
        let first = policy.backoff_ms(3, 1);
        assert_eq!(first, policy.backoff_ms(3, 1));
        assert!(first >= 4);
        assert!(policy.backoff_ms(3, 2) >= first);
        // Growth saturates at the cap.
        assert_eq!(policy.backoff_ms(3, 10), 20);
        assert_eq!(policy.backoff_ms(3, 63), 20);
    }

    #[test]
    fn permanently_panicking_cell_is_quarantined() {
        let spec = tiny_grid_spec();
        let mut panic_fault = fault("cell-start", FaultAction::Panic);
        panic_fault.cell = Some(0);
        panic_fault.detail = Some("chaos: engine test".to_string());
        let policy = RunPolicy {
            fault_plan: Some(FaultPlan {
                seed: 7,
                faults: vec![panic_fault],
            }),
            ..RunPolicy::default()
        };
        let report = run_spec_with_policy(&spec, 2, &policy).unwrap();
        let health = report.health.unwrap();
        assert_eq!(health.status, RunHealthStatus::Degraded);
        assert_eq!(health.planned_cells, 4);
        assert_eq!(health.completed_cells, 3);
        assert_eq!(health.failed_cells, 1);
        // The surviving cells are intact.
        assert_eq!(report.policy_cells.len(), 3);
        let outcomes = report.cell_outcomes.unwrap();
        let failed = &outcomes[0];
        assert!(!failed.ok);
        let error = failed.error.as_ref().unwrap();
        assert_eq!(error.kind, CellErrorKind::Panic);
        assert!(error.detail.contains("chaos: engine test"));
        // Default policy: one retry, so two attempts were consumed.
        assert_eq!(failed.attempts, Some(2));
    }

    #[test]
    fn transient_fault_recovers_to_bit_for_bit_parity() {
        let spec = tiny_grid_spec();
        let clean = comparable(run_spec_with_threads(&spec, 2).unwrap());
        let mut transient = fault("cell-start", FaultAction::Panic);
        transient.hits = Some(1);
        let policy = RunPolicy {
            backoff_base_ms: 1,
            fault_plan: Some(FaultPlan {
                seed: 7,
                faults: vec![transient],
            }),
            ..RunPolicy::default()
        };
        assert!(policy
            .fault_plan
            .as_ref()
            .unwrap()
            .recovers_within(policy.max_attempts()));
        let chaotic = comparable(run_spec_with_policy(&spec, 2, &policy).unwrap());
        assert_eq!(clean, chaotic);
    }

    #[test]
    fn degraded_reports_are_thread_count_invariant() {
        let spec = tiny_grid_spec();
        let mut broken = fault("cell-finish", FaultAction::Fail);
        broken.cell = Some(2);
        let policy = RunPolicy {
            backoff_base_ms: 1,
            fault_plan: Some(FaultPlan {
                seed: 11,
                faults: vec![broken],
            }),
            ..RunPolicy::default()
        };
        let serial = comparable(run_spec_with_policy(&spec, 1, &policy).unwrap());
        let parallel = comparable(run_spec_with_policy(&spec, 4, &policy).unwrap());
        assert_eq!(serial, parallel);
        assert_eq!(
            serial.health.as_ref().unwrap().status,
            RunHealthStatus::Degraded
        );
        let outcome = &serial.cell_outcomes.as_ref().unwrap()[2];
        assert_eq!(
            outcome.error.as_ref().unwrap().kind,
            CellErrorKind::InjectedFault
        );
        // Injected faults are retryable: the full attempt budget was spent.
        assert_eq!(outcome.attempts, Some(2));
    }

    #[test]
    fn wall_clock_deadline_fails_slow_cells() {
        let spec = tiny_grid_spec();
        let mut slow = fault("cell-start", FaultAction::Delay);
        slow.cell = Some(1);
        slow.delay_ms = Some(1200);
        let policy = RunPolicy {
            max_retries: 0,
            cell_timeout_ms: Some(600),
            fault_plan: Some(FaultPlan {
                seed: 3,
                faults: vec![slow],
            }),
            ..RunPolicy::default()
        };
        let report = run_spec_with_policy(&spec, 2, &policy).unwrap();
        let outcomes = report.cell_outcomes.unwrap();
        let failed = &outcomes[1];
        assert!(!failed.ok);
        assert_eq!(
            failed.error.as_ref().unwrap().kind,
            CellErrorKind::DeadlineExceeded
        );
        assert_eq!(report.health.unwrap().status, RunHealthStatus::Degraded);
    }

    #[test]
    fn simulated_cycle_deadline_fails_every_cell_deterministically() {
        let spec = tiny_grid_spec();
        let policy = RunPolicy {
            max_retries: 0,
            max_cell_cycles: Some(10),
            ..RunPolicy::default()
        };
        let serial = comparable(run_spec_with_policy(&spec, 1, &policy).unwrap());
        let parallel = comparable(run_spec_with_policy(&spec, 4, &policy).unwrap());
        assert_eq!(serial, parallel);
        let health = serial.health.as_ref().unwrap();
        assert_eq!(health.status, RunHealthStatus::Failed);
        assert_eq!(health.failed_cells, 4);
        for outcome in serial.cell_outcomes.as_ref().unwrap() {
            assert_eq!(
                outcome.error.as_ref().unwrap().kind,
                CellErrorKind::DeadlineExceeded
            );
        }
    }

    #[test]
    fn fail_fast_skips_cells_after_a_permanent_failure() {
        let spec = tiny_grid_spec();
        let mut broken = fault("cell-start", FaultAction::Fail);
        broken.cell = Some(0);
        let policy = RunPolicy {
            max_retries: 0,
            fail_fast: true,
            fault_plan: Some(FaultPlan {
                seed: 5,
                faults: vec![broken],
            }),
            ..RunPolicy::default()
        };
        // Serial execution makes the skip set deterministic: cell 0 fails,
        // cells 1-3 are skipped.
        let report = run_spec_with_policy(&spec, 1, &policy).unwrap();
        let outcomes = report.cell_outcomes.unwrap();
        assert_eq!(
            outcomes[0].error.as_ref().unwrap().kind,
            CellErrorKind::InjectedFault
        );
        for outcome in &outcomes[1..] {
            assert_eq!(outcome.error.as_ref().unwrap().kind, CellErrorKind::Skipped);
            assert_eq!(outcome.attempts, Some(0));
        }
        assert_eq!(report.health.unwrap().status, RunHealthStatus::Failed);
        assert!(report.policy_cells.is_empty());
    }
}
