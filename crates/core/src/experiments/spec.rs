//! Declarative, serde-serializable experiment specifications.
//!
//! An [`ExperimentSpec`] captures everything needed to reproduce one table or
//! figure of the paper — or any user-defined scenario — as data: the
//! [`ExperimentKind`], the fetch policies, the workloads (benchmark lists),
//! optional configuration [`ConfigOverrides`], an optional parameter
//! [`SweepSpec`], and the [`RunScale`]. Specs round-trip through TOML and
//! JSON, are validated with field-naming error messages before running, and
//! are executed by [`crate::experiments::engine::run_spec`].

use serde::{Deserialize, Serialize};
use smt_resil::FaultPlan;
use smt_sched::AllocationPolicyKind;
use smt_trace::spec as trace_spec;
use smt_types::adaptive::{AdaptiveConfig, SelectorKind};
use smt_types::config::{BusConfig, CacheConfig, FetchPolicyKind};
use smt_types::{ChipConfig, SamplingConfig, SimError, SmtConfig};

use crate::runner::RunScale;
use crate::workloads::{Workload, WorkloadGroup};

/// The shape of an experiment: what is measured per grid cell.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExperimentKind {
    /// STP/ANTT of each (policy × workload × sweep-point) multiprogram run
    /// (Figures 9–23).
    PolicyGrid,
    /// Per-benchmark single-thread MLP characterization (Table I / Figure 1).
    Characterization,
    /// Per-benchmark predictor accuracy on single-thread runs (Figures 6–8).
    PredictorAccuracy,
    /// Per-benchmark predicted MLP-distance CDF (Figure 4).
    MlpDistanceCdf,
    /// Per-benchmark IPC with and without the hardware prefetcher (Figure 5).
    PrefetcherImpact,
    /// STP/ANTT of each (fetch policy × allocation × workload) chip-level run
    /// on a CMP of SMT cores sharing an LLC (requires [`ExperimentSpec::chip`]).
    ChipGrid,
    /// STP/ANTT of each (selector × candidate-set × workload) run under the
    /// adaptive policy engine (requires [`ExperimentSpec::adaptive`]; with
    /// [`ExperimentSpec::chip`] present, the grid runs at chip level and also
    /// spans the chip's allocation policies).
    AdaptiveGrid,
}

impl ExperimentKind {
    /// Every experiment kind.
    pub const ALL: [ExperimentKind; 7] = [
        ExperimentKind::PolicyGrid,
        ExperimentKind::Characterization,
        ExperimentKind::PredictorAccuracy,
        ExperimentKind::MlpDistanceCdf,
        ExperimentKind::PrefetcherImpact,
        ExperimentKind::ChipGrid,
        ExperimentKind::AdaptiveGrid,
    ];

    /// Machine-readable name used in spec files.
    pub fn name(self) -> &'static str {
        match self {
            ExperimentKind::PolicyGrid => "policy_grid",
            ExperimentKind::Characterization => "characterization",
            ExperimentKind::PredictorAccuracy => "predictor_accuracy",
            ExperimentKind::MlpDistanceCdf => "mlp_distance_cdf",
            ExperimentKind::PrefetcherImpact => "prefetcher_impact",
            ExperimentKind::ChipGrid => "chip_grid",
            ExperimentKind::AdaptiveGrid => "adaptive_grid",
        }
    }

    /// Parses a [`ExperimentKind::name`] string.
    pub fn from_name(name: &str) -> Option<ExperimentKind> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Whether this kind runs one benchmark at a time on a single-thread
    /// configuration (no policies, no multiprogram workloads).
    pub fn is_single_thread(self) -> bool {
        !matches!(
            self,
            ExperimentKind::PolicyGrid | ExperimentKind::ChipGrid | ExperimentKind::AdaptiveGrid
        )
    }
}

serde::named_enum_serde!(ExperimentKind, "experiment kind");

/// The machine parameter a [`SweepSpec`] varies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SweepParameter {
    /// Main-memory access latency in cycles (Figures 15/16).
    MemoryLatency,
    /// ROB entries, with the LSQ/IQs/rename registers scaled proportionally
    /// (Figures 17/18, Section 6.4.2).
    WindowSize,
}

impl SweepParameter {
    /// Every sweepable parameter.
    pub const ALL: [SweepParameter; 2] =
        [SweepParameter::MemoryLatency, SweepParameter::WindowSize];

    /// Machine-readable name used in spec files.
    pub fn name(self) -> &'static str {
        match self {
            SweepParameter::MemoryLatency => "memory_latency",
            SweepParameter::WindowSize => "window_size",
        }
    }

    /// Parses a [`SweepParameter::name`] string.
    pub fn from_name(name: &str) -> Option<SweepParameter> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Applies one sweep value to a configuration.
    pub fn apply(self, config: SmtConfig, value: u64) -> SmtConfig {
        match self {
            SweepParameter::MemoryLatency => config.with_memory_latency(value),
            SweepParameter::WindowSize => config.with_window_size(value as u32),
        }
    }
}

serde::named_enum_serde!(SweepParameter, "sweep parameter");

/// A one-dimensional machine-parameter sweep attached to a policy grid.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SweepSpec {
    /// The parameter to vary.
    pub parameter: SweepParameter,
    /// The values to evaluate the whole policy × workload grid at.
    pub values: Vec<u64>,
}

/// Sparse overrides applied on top of the Table IV baseline configuration.
///
/// Absent fields keep their baseline values; unknown field names are rejected
/// at deserialization time with an error naming the offending field.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ConfigOverrides {
    /// Main-memory access latency in cycles.
    pub memory_latency: Option<u64>,
    /// ROB entries; the LSQ, issue queues and rename registers are scaled
    /// proportionally as in Section 6.4.2.
    pub rob_window: Option<u32>,
    /// Enables or disables the hardware stream-buffer prefetcher.
    pub prefetcher_enabled: Option<bool>,
    /// Artificially serializes independent long-latency loads (Table I's
    /// MLP-impact methodology).
    pub serialize_long_latency_loads: Option<bool>,
    /// Explicit per-thread long-latency shift register length.
    pub llsr_length: Option<u32>,
    /// Total instructions fetched per cycle.
    pub fetch_width: Option<u32>,
    /// Maximum number of threads fetched from per cycle.
    pub fetch_threads_per_cycle: Option<u32>,
    /// Outstanding misses supported per thread (MSHR-style limit).
    pub max_outstanding_misses: Option<u32>,
}

impl ConfigOverrides {
    /// Returns `true` when no field is overridden.
    pub fn is_empty(&self) -> bool {
        *self == ConfigOverrides::default()
    }

    /// Applies the overrides to a configuration.
    pub fn apply(&self, mut config: SmtConfig) -> SmtConfig {
        if let Some(latency) = self.memory_latency {
            config.memory_latency = latency;
        }
        if let Some(rob) = self.rob_window {
            config = config.with_window_size(rob);
        }
        if let Some(enabled) = self.prefetcher_enabled {
            config.prefetcher.enabled = enabled;
        }
        if let Some(serialize) = self.serialize_long_latency_loads {
            config.serialize_long_latency_loads = serialize;
        }
        if let Some(length) = self.llsr_length {
            config.llsr_length_override = Some(length);
        }
        if let Some(width) = self.fetch_width {
            config.fetch_width = width;
        }
        if let Some(threads) = self.fetch_threads_per_cycle {
            config.fetch_threads_per_cycle = threads;
        }
        if let Some(misses) = self.max_outstanding_misses {
            config.max_outstanding_misses = misses;
        }
        config
    }
}

/// Chip-level (CMP-of-SMT) parameters of a [`ExperimentKind::ChipGrid`]
/// experiment.
///
/// Each workload of the spec is divided evenly over `num_cores` cores
/// (`threads_per_core = workload_len / num_cores`); the grid then evaluates
/// every fetch policy × thread-to-core allocation combination.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ChipSpec {
    /// Number of SMT cores on the chip.
    pub num_cores: usize,
    /// Thread-to-core allocation policies to evaluate (the second grid axis).
    pub allocations: Vec<AllocationPolicyKind>,
    /// Shared memory-bus bandwidth in bytes per cycle (`0` = unlimited).
    pub bus_bytes_per_cycle: u32,
    /// Shared LLC geometry; defaults to the Table IV L3 of the core
    /// configuration when absent.
    pub shared_llc: Option<CacheConfig>,
    /// Worker threads stepping cores within a chip cycle (default 1 =
    /// serial). Purely a host-side throughput knob: grid results are
    /// bit-for-bit identical at any value.
    pub chip_threads: Option<usize>,
}

/// Adaptive-engine parameters of an [`ExperimentKind::AdaptiveGrid`]
/// experiment.
///
/// The grid evaluates every selector × candidate-set combination on every
/// workload. A `candidate_sets` entry is an ordered policy list: the machine
/// starts on (and, under the static selector, never leaves) the first
/// policy, so `[["icount", "mlp-flush"], ["mlp-flush", "icount"]]` with the
/// `static` selector yields both static baselines inside the same report.
/// Optional fields default to the [`AdaptiveConfig::new`] geometry.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct AdaptiveSpec {
    /// Policy selectors to evaluate (the first grid axis).
    pub selectors: Vec<SelectorKind>,
    /// Candidate policy sets to evaluate (the second grid axis).
    pub candidate_sets: Vec<Vec<FetchPolicyKind>>,
    /// Interval length in cycles between selector evaluations.
    pub interval_cycles: Option<u64>,
    /// Sampling selector: intervals per candidate trial.
    pub sample_intervals: Option<u64>,
    /// Sampling selector: intervals the epoch winner runs for.
    pub commit_intervals: Option<u64>,
    /// MLP-threshold selector: memory-bound LLL/Kinst threshold.
    pub lll_per_kinst_threshold: Option<f64>,
    /// MLP-threshold selector: exploitable-MLP threshold.
    pub mlp_threshold: Option<f64>,
}

impl AdaptiveSpec {
    /// Builds the [`AdaptiveConfig`] of one grid cell.
    pub fn config_for(
        &self,
        selector: SelectorKind,
        candidates: &[FetchPolicyKind],
    ) -> AdaptiveConfig {
        let mut config = AdaptiveConfig::new(selector, candidates.to_vec());
        if let Some(interval) = self.interval_cycles {
            config.interval_cycles = interval;
        }
        if let Some(sample) = self.sample_intervals {
            config.sample_intervals = sample;
        }
        if let Some(commit) = self.commit_intervals {
            config.commit_intervals = commit;
        }
        if let Some(lll) = self.lll_per_kinst_threshold {
            config.lll_per_kinst_threshold = lll;
        }
        if let Some(mlp) = self.mlp_threshold {
            config.mlp_threshold = mlp;
        }
        config
    }
}

/// Resilience knobs and test hooks for the fault-tolerant engine: retry
/// budgets, per-cell deadlines, and the deterministic fault plan the chaos
/// harness (`smt-resil`) injects. Every field is optional; an absent field
/// falls back to the engine default (see
/// [`crate::experiments::engine::RunPolicy`]), and CLI flags override spec
/// values.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ResilienceSpec {
    /// Retries per failed cell on top of the first attempt (0 = give up
    /// immediately).
    pub max_retries: Option<u64>,
    /// Wall-clock budget per cell attempt, in milliseconds; enforcement is
    /// by the engine's watchdog thread.
    pub cell_timeout_ms: Option<u64>,
    /// Deterministic simulated-cycle cap per cell attempt, enforced inside
    /// the simulator step loop; a cell whose simulation hits the cap before
    /// completing its instruction budget fails with a deadline error.
    pub max_cell_cycles: Option<u64>,
    /// Stop scheduling new cells after the first permanent cell failure.
    pub fail_fast: Option<bool>,
    /// First-retry backoff in milliseconds (doubled per retry, capped).
    pub backoff_base_ms: Option<u64>,
    /// Upper bound on the per-retry backoff, in milliseconds.
    pub backoff_cap_ms: Option<u64>,
    /// Deterministic fault schedule injected at the engine's named
    /// injection points (the chaos-test hook).
    pub fault_plan: Option<FaultPlan>,
}

impl ResilienceSpec {
    /// Whether every field is unset.
    pub fn is_empty(&self) -> bool {
        *self == ResilienceSpec::default()
    }
}

/// Sampled-execution cadence of a [`ExperimentKind::PolicyGrid`] experiment:
/// when present, every grid cell runs in SMARTS-style sampled mode
/// (`skip → ff → warm → measure` units, see
/// [`SamplingConfig`]) instead of cycle-accurate end to end, and the report
/// carries per-metric confidence intervals next to the point estimates.
///
/// Every field is optional; an absent field falls back to the
/// [`SamplingConfig::default`] cadence. The warm prefix
/// (`scale.warmup_instructions`) is fast-forwarded functionally once per
/// workload and shared across the grid's cells as a serialized warm
/// checkpoint.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SamplingSpec {
    /// Instructions per thread consumed at raw trace speed per unit
    /// (warm state frozen; 0 disables the skip phase).
    pub skip_instructions: Option<u64>,
    /// Instructions per thread fast-forwarded (functional warming) per unit.
    pub ff_instructions: Option<u64>,
    /// Detailed-mode pipeline warm-up instructions per measurement window.
    pub warm_instructions: Option<u64>,
    /// Detailed-mode instructions measured per window.
    pub measure_instructions: Option<u64>,
    /// Minimum number of measurement windows per run.
    pub min_windows: Option<u32>,
}

impl SamplingSpec {
    /// The [`SamplingConfig`] this spec resolves to (defaults filled in).
    pub fn config(&self) -> SamplingConfig {
        let mut config = SamplingConfig::default();
        if let Some(skip) = self.skip_instructions {
            config.skip_instructions = skip;
        }
        if let Some(ff) = self.ff_instructions {
            config.ff_instructions = ff;
        }
        if let Some(warm) = self.warm_instructions {
            config.warm_instructions = warm;
        }
        if let Some(measure) = self.measure_instructions {
            config.measure_instructions = measure;
        }
        if let Some(min) = self.min_windows {
            config.min_windows = min;
        }
        config
    }
}

/// A complete, serializable description of one experiment.
///
/// # Example
///
/// ```
/// use smt_core::experiments::spec::ExperimentSpec;
///
/// let toml_text = r#"
/// name = "quick-mlp-check"
/// title = "ICOUNT vs MLP-aware flush on one MLP-intensive mix"
/// paper_ref = "Figure 9"
/// kind = "policy_grid"
/// policies = ["icount", "mlp-flush"]
/// workloads = [["mcf", "swim"]]
///
/// [scale]
/// instructions_per_thread = 2000
/// warmup_instructions = 1000
/// seed = 42
/// "#;
/// let spec: ExperimentSpec = toml::from_str(toml_text).expect("valid spec");
/// assert!(spec.validate().is_ok());
/// assert_eq!(spec.policies.len(), 2);
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ExperimentSpec {
    /// Unique machine-readable name (registry key and CLI argument).
    pub name: String,
    /// Human-readable one-line description.
    pub title: String,
    /// The paper table/figure this experiment reproduces (empty for custom
    /// scenarios).
    pub paper_ref: String,
    /// What is measured per grid cell.
    pub kind: ExperimentKind,
    /// Fetch policies to evaluate (must be empty for single-thread kinds).
    pub policies: Vec<FetchPolicyKind>,
    /// Workloads as benchmark-name lists, one inner list per hardware thread
    /// assignment (single-thread kinds use one benchmark per list).
    pub workloads: Vec<Vec<String>>,
    /// Optional machine-parameter sweep (policy grids only).
    pub sweep: Option<SweepSpec>,
    /// Optional sparse configuration overrides (policy grids only).
    pub overrides: Option<ConfigOverrides>,
    /// Chip-level parameters (required for [`ExperimentKind::ChipGrid`];
    /// optional for [`ExperimentKind::AdaptiveGrid`], lifting that grid to
    /// chip level).
    pub chip: Option<ChipSpec>,
    /// Adaptive-engine parameters (required for, and exclusive to,
    /// [`ExperimentKind::AdaptiveGrid`]).
    pub adaptive: Option<AdaptiveSpec>,
    /// Resilience knobs and fault-injection hooks (any kind; optional).
    pub resilience: Option<ResilienceSpec>,
    /// Sampled-execution cadence (exclusive to
    /// [`ExperimentKind::PolicyGrid`]; optional — absent runs cycle-accurate
    /// end to end).
    pub sampling: Option<SamplingSpec>,
    /// Simulation size.
    pub scale: RunScale,
}

impl ExperimentSpec {
    /// The sweep values to evaluate: the sweep's values, or a single `None`
    /// for unswept experiments.
    pub fn sweep_points(&self) -> Vec<Option<u64>> {
        match &self.sweep {
            Some(sweep) => sweep.values.iter().map(|&v| Some(v)).collect(),
            None => vec![None],
        }
    }

    /// Builds the simulator configuration for one workload of this spec at
    /// one sweep point.
    pub fn config_for(&self, num_threads: usize, sweep_value: Option<u64>) -> SmtConfig {
        let mut config = SmtConfig::baseline(num_threads);
        if let Some(overrides) = &self.overrides {
            config = overrides.apply(config);
        }
        if let (Some(sweep), Some(value)) = (&self.sweep, sweep_value) {
            config = sweep.parameter.apply(config, value);
        }
        config
    }

    /// Builds the chip configuration for one workload of a
    /// [`ExperimentKind::ChipGrid`] spec at one sweep point.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no [`ChipSpec`] or the workload does not divide
    /// evenly over the cores (both rejected by [`ExperimentSpec::validate`]).
    pub fn chip_config_for(&self, workload_threads: usize, sweep_value: Option<u64>) -> ChipConfig {
        let chip = self
            .chip
            .as_ref()
            // analyze: allow(panic-policy) reason="documented panic: validate() guarantees chip parameters before any chip_config_for call"
            .expect("chip grid spec has chip parameters");
        assert!(
            chip.num_cores > 0 && workload_threads.is_multiple_of(chip.num_cores),
            "workload must divide evenly over the cores"
        );
        let core = self.config_for(workload_threads / chip.num_cores, sweep_value);
        ChipConfig {
            num_cores: chip.num_cores,
            shared_llc: chip.shared_llc.unwrap_or(core.l3),
            bus: BusConfig {
                bytes_per_cycle: chip.bus_bytes_per_cycle,
            },
            core,
            chip_threads: chip.chip_threads,
        }
    }

    /// Returns a copy with a different run scale.
    pub fn with_scale(mut self, scale: RunScale) -> Self {
        self.scale = scale;
        self
    }

    /// Returns a copy keeping at most `limit` workloads of each workload
    /// group (ILP/MLP/mixed), preserving order — the spec-level equivalent of
    /// the legacy `per_group` arguments.
    ///
    /// # Errors
    ///
    /// Returns an error if a workload names an unknown benchmark.
    pub fn with_workload_limit_per_group(mut self, limit: usize) -> Result<Self, SimError> {
        let mut kept = Vec::new();
        let mut counts: Vec<(WorkloadGroup, usize)> = Vec::new();
        for benchmarks in &self.workloads {
            let group = Workload::new(benchmarks.clone())?.group;
            let index = match counts.iter().position(|(g, _)| *g == group) {
                Some(index) => index,
                None => {
                    counts.push((group, 0));
                    counts.len() - 1
                }
            };
            let count = &mut counts[index].1;
            if *count < limit {
                *count += 1;
                kept.push(benchmarks.clone());
            }
        }
        self.workloads = kept;
        Ok(self)
    }

    /// Returns a copy keeping at most the first `limit` workloads.
    pub fn with_workload_limit(mut self, limit: usize) -> Self {
        self.workloads.truncate(limit);
        self
    }

    /// Checks the spec for internal consistency, without running anything.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] (or [`SimError::UnknownBenchmark`])
    /// with a message naming the offending field or benchmark.
    pub fn validate(&self) -> Result<(), SimError> {
        let name = &self.name;
        if name.is_empty() {
            return Err(SimError::invalid_config("name: must not be empty"));
        }
        self.scale
            .validate()
            .map_err(|e| prefix_error(name, "scale", e))?;
        if self.workloads.is_empty() {
            return Err(invalid(name, "workloads: must not be empty"));
        }
        // The chip table's own fields are checked before anything derived
        // from them (like the per-workload thread limit), so a degenerate
        // `num_cores` gets its own diagnostic instead of poisoning later
        // arithmetic.
        let chip_allowed = matches!(
            self.kind,
            ExperimentKind::ChipGrid | ExperimentKind::AdaptiveGrid
        );
        if self.kind == ExperimentKind::ChipGrid && self.chip.is_none() {
            return Err(invalid(name, "chip: required for kind `chip_grid`"));
        }
        if let Some(chip) = &self.chip {
            if !chip_allowed {
                return Err(invalid(
                    name,
                    format!(
                        "chip: only supported for kinds `chip_grid` and `adaptive_grid`, \
                         not `{}`",
                        self.kind.name()
                    ),
                ));
            }
            if chip.num_cores == 0 || chip.num_cores > ChipConfig::MAX_CORES {
                return Err(invalid(
                    name,
                    format!(
                        "chip.num_cores: must be between 1 and {}",
                        ChipConfig::MAX_CORES
                    ),
                ));
            }
            if chip.allocations.is_empty() {
                return Err(invalid(name, "chip.allocations: must not be empty"));
            }
        }
        if self.kind == ExperimentKind::AdaptiveGrid {
            let Some(adaptive) = &self.adaptive else {
                return Err(invalid(name, "adaptive: required for kind `adaptive_grid`"));
            };
            if adaptive.selectors.is_empty() {
                return Err(invalid(name, "adaptive.selectors: must not be empty"));
            }
            if adaptive.candidate_sets.is_empty() {
                return Err(invalid(name, "adaptive.candidate_sets: must not be empty"));
            }
            // Every cell's engine configuration must itself be valid.
            for &selector in &adaptive.selectors {
                for (i, candidates) in adaptive.candidate_sets.iter().enumerate() {
                    adaptive
                        .config_for(selector, candidates)
                        .validate()
                        .map_err(|e| {
                            prefix_error(
                                name,
                                &format!(
                                    "adaptive (selector `{}`, candidate_sets[{i}])",
                                    selector.name()
                                ),
                                e,
                            )
                        })?;
                }
            }
            if !self.policies.is_empty() {
                return Err(invalid(
                    name,
                    "policies: must be empty for kind `adaptive_grid` (the candidate sets \
                     name the policies)",
                ));
            }
        } else if self.adaptive.is_some() {
            return Err(invalid(
                name,
                format!(
                    "adaptive: only supported for kind `adaptive_grid`, not `{}`",
                    self.kind.name()
                ),
            ));
        }
        let threads_limit = match &self.chip {
            Some(chip) => chip.num_cores * smt_types::ThreadId::MAX_THREADS,
            None => smt_types::ThreadId::MAX_THREADS,
        };
        for (i, benchmarks) in self.workloads.iter().enumerate() {
            if benchmarks.is_empty() {
                return Err(invalid(
                    name,
                    format!("workloads[{i}]: must name at least one benchmark"),
                ));
            }
            if benchmarks.len() > threads_limit {
                return Err(invalid(
                    name,
                    format!(
                        "workloads[{i}]: {} benchmarks exceeds the {threads_limit}-thread hardware limit",
                        benchmarks.len(),
                    ),
                ));
            }
            for benchmark in benchmarks {
                // `trace:<path>` workloads are validated lexically here; the
                // file itself is opened (and its header checked) when the run
                // builds its trace sources, so specs stay serializable and
                // checkable without touching the filesystem.
                if let Some(path) = smt_trace::trace_path(benchmark) {
                    if path.is_empty() {
                        return Err(invalid(
                            name,
                            format!("workloads[{i}]: `trace:` workload is missing a file path"),
                        ));
                    }
                } else if trace_spec::benchmark(benchmark).is_err() {
                    return Err(invalid(
                        name,
                        format!("workloads[{i}]: unknown benchmark `{benchmark}`"),
                    ));
                }
            }
        }
        if let Some(chip) = self.chip.as_ref().filter(|_| chip_allowed) {
            for (i, benchmarks) in self.workloads.iter().enumerate() {
                if !benchmarks.len().is_multiple_of(chip.num_cores)
                    || benchmarks.len() / chip.num_cores == 0
                    || benchmarks.len() / chip.num_cores > smt_types::ThreadId::MAX_THREADS
                {
                    return Err(invalid(
                        name,
                        format!(
                            "workloads[{i}]: {} benchmarks do not divide into {} cores of 1..={} threads",
                            benchmarks.len(),
                            chip.num_cores,
                            smt_types::ThreadId::MAX_THREADS
                        ),
                    ));
                }
            }
        }
        if self.kind.is_single_thread() {
            if !self.policies.is_empty() {
                return Err(invalid(
                    name,
                    format!(
                        "policies: must be empty for single-thread kind `{}`",
                        self.kind.name()
                    ),
                ));
            }
            if let Some(i) = self.workloads.iter().position(|w| w.len() != 1) {
                return Err(invalid(
                    name,
                    format!(
                        "workloads[{i}]: single-thread kind `{}` takes exactly one benchmark \
                         per workload",
                        self.kind.name()
                    ),
                ));
            }
            if self.sweep.is_some() {
                return Err(invalid(
                    name,
                    format!("sweep: not supported for kind `{}`", self.kind.name()),
                ));
            }
            if self.overrides.is_some_and(|o| !o.is_empty()) {
                return Err(invalid(
                    name,
                    format!("overrides: not supported for kind `{}`", self.kind.name()),
                ));
            }
        } else if self.policies.is_empty() && self.kind != ExperimentKind::AdaptiveGrid {
            return Err(invalid(
                name,
                "policies: must not be empty for a policy grid",
            ));
        }
        if let Some(sweep) = &self.sweep {
            if sweep.values.is_empty() {
                return Err(invalid(name, "sweep.values: must not be empty"));
            }
        }
        if let Some(sampling) = &self.sampling {
            if self.kind != ExperimentKind::PolicyGrid {
                return Err(invalid(
                    name,
                    format!(
                        "sampling: only supported for kind `policy_grid`, not `{}`",
                        self.kind.name()
                    ),
                ));
            }
            sampling
                .config()
                .validate()
                .map_err(|e| prefix_error(name, "sampling", e))?;
        }
        if let Some(resilience) = &self.resilience {
            if resilience.max_cell_cycles == Some(0) {
                return Err(invalid(
                    name,
                    "resilience.max_cell_cycles: must be non-zero",
                ));
            }
            if let Some(plan) = &resilience.fault_plan {
                plan.validate()
                    .map_err(|e| prefix_error(name, "resilience", e))?;
            }
        }
        // Every configuration the grid will run must itself be valid.
        for sweep_value in self.sweep_points() {
            for (i, benchmarks) in self.workloads.iter().enumerate() {
                let at = || match sweep_value {
                    Some(v) => format!("workloads[{i}] at sweep value {v}"),
                    None => format!("workloads[{i}]"),
                };
                if self.chip.is_some() {
                    let chip_config = self.chip_config_for(benchmarks.len(), sweep_value);
                    chip_config
                        .validate()
                        .map_err(|e| prefix_error(name, &format!("chip ({})", at()), e))?;
                } else {
                    let config = self.config_for(benchmarks.len(), sweep_value);
                    config
                        .validate()
                        .map_err(|e| prefix_error(name, &format!("overrides ({})", at()), e))?;
                }
            }
        }
        Ok(())
    }
}

fn invalid(experiment: &str, message: impl std::fmt::Display) -> SimError {
    SimError::invalid_config(format!("experiment `{experiment}`: {message}"))
}

fn prefix_error(experiment: &str, field: &str, error: SimError) -> SimError {
    match error {
        SimError::InvalidConfig { reason } => {
            SimError::invalid_config(format!("experiment `{experiment}`: {field}: {reason}"))
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> ExperimentSpec {
        ExperimentSpec {
            name: "sample".to_string(),
            title: "Sample policy grid".to_string(),
            paper_ref: "Figure 9".to_string(),
            kind: ExperimentKind::PolicyGrid,
            policies: vec![FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush],
            workloads: vec![
                vec!["mcf".to_string(), "swim".to_string()],
                vec!["gcc".to_string(), "gap".to_string()],
            ],
            sweep: None,
            overrides: None,
            chip: None,
            adaptive: None,
            resilience: None,
            sampling: None,
            scale: RunScale::tiny(),
        }
    }

    fn sample_chip_spec() -> ExperimentSpec {
        ExperimentSpec {
            name: "sample-chip".to_string(),
            title: "Sample chip grid".to_string(),
            paper_ref: String::new(),
            kind: ExperimentKind::ChipGrid,
            policies: vec![FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush],
            workloads: vec![vec![
                "mcf".to_string(),
                "swim".to_string(),
                "gcc".to_string(),
                "gap".to_string(),
            ]],
            sweep: None,
            overrides: None,
            chip: Some(ChipSpec {
                num_cores: 2,
                allocations: vec![
                    AllocationPolicyKind::RoundRobin,
                    AllocationPolicyKind::MlpBalanced,
                ],
                bus_bytes_per_cycle: 16,
                shared_llc: None,
                chip_threads: None,
            }),
            adaptive: None,
            resilience: None,
            sampling: None,
            scale: RunScale::tiny(),
        }
    }

    #[test]
    fn valid_spec_passes() {
        assert!(sample_spec().validate().is_ok());
    }

    #[test]
    fn toml_round_trip_preserves_spec() {
        let mut spec = sample_spec();
        spec.sweep = Some(SweepSpec {
            parameter: SweepParameter::MemoryLatency,
            values: vec![200, 800],
        });
        spec.overrides = Some(ConfigOverrides {
            prefetcher_enabled: Some(false),
            ..ConfigOverrides::default()
        });
        let text = toml::to_string(&spec).unwrap();
        let back: ExperimentSpec = toml::from_str(&text).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn json_round_trip_preserves_spec() {
        let spec = sample_spec();
        let text = serde_json::to_string_pretty(&spec).unwrap();
        let back: ExperimentSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn unknown_spec_field_rejected_by_name() {
        let text = "name = \"x\"\ntitle = \"x\"\npaper_ref = \"\"\nkind = \"policy_grid\"\n\
                    policies = [\"icount\"]\nworkloads = [[\"mcf\"]]\nunknown_knob = 3\n\
                    [scale]\ninstructions_per_thread = 1000\nwarmup_instructions = 0\nseed = 1\n";
        let err = toml::from_str::<ExperimentSpec>(text)
            .unwrap_err()
            .to_string();
        assert!(err.contains("unknown_knob"), "{err}");
        assert!(err.contains("ExperimentSpec"), "{err}");
    }

    #[test]
    fn unknown_override_field_rejected_by_name() {
        let err = toml::from_str::<ConfigOverrides>("memory_latencyy = 600\n")
            .unwrap_err()
            .to_string();
        assert!(err.contains("memory_latencyy"), "{err}");
        assert!(err.contains("ConfigOverrides"), "{err}");
    }

    #[test]
    fn bad_policy_name_rejected() {
        let mut spec = sample_spec();
        let text = toml::to_string(&spec)
            .unwrap()
            .replace("mlp-flush", "mlp-flushh");
        let err = toml::from_str::<ExperimentSpec>(&text)
            .unwrap_err()
            .to_string();
        assert!(err.contains("mlp-flushh"), "{err}");
        // And the error path names the field that failed.
        assert!(err.contains("policies"), "{err}");
        spec.policies.clear();
        let err = spec.validate().unwrap_err().to_string();
        assert!(err.contains("policies"), "{err}");
    }

    #[test]
    fn oversized_workload_rejected_not_panicking() {
        let mut spec = sample_spec();
        spec.workloads = vec![vec![
            "mcf", "swim", "gcc", "gap", "apsi", "mesa", "art", "bzip2", "applu",
        ]
        .into_iter()
        .map(String::from)
        .collect()];
        let err = spec.validate().unwrap_err().to_string();
        assert!(
            err.contains("workloads[0]") && err.contains("hardware limit"),
            "{err}"
        );
    }

    #[test]
    fn unknown_benchmark_rejected_with_index() {
        let mut spec = sample_spec();
        spec.workloads[1] = vec!["gcc".to_string(), "quake3".to_string()];
        let err = spec.validate().unwrap_err().to_string();
        assert!(
            err.contains("workloads[1]") && err.contains("quake3"),
            "{err}"
        );
    }

    #[test]
    fn single_thread_kinds_reject_policies_and_multithread_workloads() {
        let mut spec = sample_spec();
        spec.kind = ExperimentKind::Characterization;
        let err = spec.clone().validate().unwrap_err().to_string();
        assert!(err.contains("policies"), "{err}");
        spec.policies.clear();
        let err = spec.validate().unwrap_err().to_string();
        assert!(err.contains("workloads[0]"), "{err}");
    }

    #[test]
    fn degenerate_override_rejected_through_config_validation() {
        let mut spec = sample_spec();
        spec.overrides = Some(ConfigOverrides {
            max_outstanding_misses: Some(0),
            ..ConfigOverrides::default()
        });
        let err = spec.validate().unwrap_err().to_string();
        assert!(err.contains("overrides"), "{err}");
        assert!(err.contains("MSHR"), "{err}");
    }

    #[test]
    fn sweep_points_and_config_application() {
        let mut spec = sample_spec();
        spec.sweep = Some(SweepSpec {
            parameter: SweepParameter::WindowSize,
            values: vec![128, 512],
        });
        assert_eq!(spec.sweep_points(), vec![Some(128), Some(512)]);
        let config = spec.config_for(2, Some(512));
        assert_eq!(config.rob_size, 512);
        assert_eq!(config.lsq_size, 256);
        let unswept = sample_spec();
        assert_eq!(unswept.sweep_points(), vec![None]);
        assert_eq!(unswept.config_for(2, None), SmtConfig::baseline(2));
    }

    #[test]
    fn per_group_limit_keeps_group_balance() {
        let mut spec = sample_spec();
        spec.workloads = vec![
            vec!["mcf".to_string(), "swim".to_string()],   // MLP
            vec!["gcc".to_string(), "gap".to_string()],    // ILP
            vec!["swim".to_string(), "twolf".to_string()], // MIX
            vec!["applu".to_string(), "swim".to_string()], // MLP (over limit)
        ];
        let limited = spec.with_workload_limit_per_group(1).unwrap();
        assert_eq!(limited.workloads.len(), 3);
        assert_eq!(limited.workloads[0][0], "mcf");
    }

    #[test]
    fn chip_spec_validates_and_round_trips() {
        let spec = sample_chip_spec();
        spec.validate().unwrap();
        let text = toml::to_string(&spec).unwrap();
        let back: ExperimentSpec = toml::from_str(&text).unwrap();
        assert_eq!(back, spec);
        let chip_config = spec.chip_config_for(4, None);
        assert_eq!(chip_config.num_cores, 2);
        assert_eq!(chip_config.core.num_threads, 2);
        assert_eq!(chip_config.bus.bytes_per_cycle, 16);
        assert_eq!(chip_config.shared_llc, chip_config.core.l3);
    }

    #[test]
    fn chip_spec_geometry_violations_rejected() {
        // Workload that does not divide over the cores.
        let mut spec = sample_chip_spec();
        spec.workloads = vec![vec![
            "mcf".to_string(),
            "swim".to_string(),
            "gcc".to_string(),
        ]];
        let err = spec.validate().unwrap_err().to_string();
        assert!(err.contains("divide"), "{err}");

        // Chip kind without chip parameters.
        let mut spec = sample_chip_spec();
        spec.chip = None;
        let err = spec.validate().unwrap_err().to_string();
        assert!(err.contains("chip"), "{err}");

        // Chip parameters on a non-chip kind.
        let mut spec = sample_spec();
        spec.chip = sample_chip_spec().chip;
        let err = spec.validate().unwrap_err().to_string();
        assert!(err.contains("chip_grid"), "{err}");

        // No allocations.
        let mut spec = sample_chip_spec();
        spec.chip.as_mut().unwrap().allocations.clear();
        let err = spec.validate().unwrap_err().to_string();
        assert!(err.contains("allocations"), "{err}");

        // Too many cores — and zero cores gets the same targeted
        // diagnostic (not a derived thread-limit complaint).
        for cores in [0usize, 99] {
            let mut spec = sample_chip_spec();
            spec.chip.as_mut().unwrap().num_cores = cores;
            let err = spec.validate().unwrap_err().to_string();
            assert!(err.contains("num_cores"), "cores={cores}: {err}");
        }
    }

    #[test]
    fn sampling_spec_validates_and_round_trips() {
        let mut spec = sample_spec();
        spec.sampling = Some(SamplingSpec {
            skip_instructions: Some(10_000),
            ff_instructions: Some(9_000),
            warm_instructions: Some(200),
            measure_instructions: Some(800),
            min_windows: Some(2),
        });
        spec.validate().unwrap();
        let text = toml::to_string(&spec).unwrap();
        let back: ExperimentSpec = toml::from_str(&text).unwrap();
        assert_eq!(back, spec);
        let config = spec.sampling.as_ref().unwrap().config();
        assert_eq!(config.unit_instructions(), 20_000);

        // Absent fields fall back to the default cadence.
        assert_eq!(SamplingSpec::default().config(), SamplingConfig::default());

        // Sampling on a non-policy-grid kind is rejected by name.
        let mut chip = sample_chip_spec();
        chip.sampling = Some(SamplingSpec::default());
        let err = chip.validate().unwrap_err().to_string();
        assert!(
            err.contains("sampling") && err.contains("policy_grid"),
            "{err}"
        );

        // A degenerate cadence is rejected through config validation.
        let mut zero = sample_spec();
        zero.sampling = Some(SamplingSpec {
            measure_instructions: Some(0),
            ..SamplingSpec::default()
        });
        let err = zero.validate().unwrap_err().to_string();
        assert!(
            err.contains("sampling") && err.contains("measure_instructions"),
            "{err}"
        );
    }

    #[test]
    fn kind_and_parameter_names_round_trip() {
        for kind in ExperimentKind::ALL {
            assert_eq!(ExperimentKind::from_name(kind.name()), Some(kind));
        }
        for parameter in SweepParameter::ALL {
            assert_eq!(SweepParameter::from_name(parameter.name()), Some(parameter));
        }
    }
}
