//! Fetch-policy comparison experiments: Figures 9–14 (main comparison and IPC
//! stacks), Figures 20/21 (alternative MLP-aware policies) and Figures 22/23
//! (static partitioning and DCRA).

use smt_types::config::FetchPolicyKind;
use smt_types::{SimError, SmtConfig};

use crate::experiments::engine;
use crate::metrics;
use crate::runner::{RunScale, StReferenceCache, WorkloadResult};
use crate::workloads::{four_thread_workloads, two_thread_workloads, Workload, WorkloadGroup};

/// Aggregated result of running one fetch policy over a set of workloads.
#[derive(Clone, Debug)]
pub struct PolicyComparison {
    /// The policy evaluated.
    pub policy: FetchPolicyKind,
    /// One result per workload.
    pub per_workload: Vec<WorkloadResult>,
    /// Harmonic-mean STP across the workloads (higher is better).
    pub avg_stp: f64,
    /// Arithmetic-mean ANTT across the workloads (lower is better).
    pub avg_antt: f64,
}

/// Results for one workload group (ILP-, MLP-intensive, or mixed), all policies.
#[derive(Clone, Debug)]
pub struct GroupSummary {
    /// The workload group.
    pub group: WorkloadGroup,
    /// One aggregate per policy, in the order the policies were requested.
    pub policies: Vec<PolicyComparison>,
}

impl GroupSummary {
    /// Looks up the aggregate for one policy.
    pub fn policy(&self, kind: FetchPolicyKind) -> Option<&PolicyComparison> {
        self.policies.iter().find(|p| p.policy == kind)
    }
}

/// Runs `policies` over `workloads` on `config`, reusing one single-threaded
/// reference cache across all runs.
///
/// The grid is executed by the parallel experiment engine
/// ([`engine::run_policy_grid`]) across [`engine::default_parallelism`]
/// worker threads; results are deterministic and identical to the historical
/// serial evaluation order.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn policy_comparison(
    policies: &[FetchPolicyKind],
    workloads: &[Workload],
    config: &SmtConfig,
    scale: RunScale,
) -> Result<Vec<PolicyComparison>, SimError> {
    let cache = StReferenceCache::new();
    let grid = engine::run_policy_grid(
        policies,
        workloads,
        config,
        scale,
        &cache,
        engine::default_parallelism(),
    )?;
    let mut out = Vec::with_capacity(policies.len());
    for (&policy, per_workload) in policies.iter().zip(grid) {
        let stps: Vec<f64> = per_workload.iter().map(|r| r.stp).collect();
        let antts: Vec<f64> = per_workload.iter().map(|r| r.antt).collect();
        out.push(PolicyComparison {
            policy,
            avg_stp: metrics::harmonic_mean(&stps),
            avg_antt: metrics::arithmetic_mean(&antts),
            per_workload,
        });
    }
    Ok(out)
}

/// Selects up to `per_group` workloads of each group from the Table II two-thread
/// workloads (`usize::MAX` for the full table).
pub fn two_thread_selection(per_group: usize) -> Vec<Workload> {
    let mut out = Vec::new();
    for group in [
        WorkloadGroup::IlpIntensive,
        WorkloadGroup::MlpIntensive,
        WorkloadGroup::Mixed,
    ] {
        out.extend(
            two_thread_workloads()
                .into_iter()
                .filter(|w| w.group == group)
                .take(per_group),
        );
    }
    out
}

/// Figures 9 and 10: STP and ANTT of the six main fetch policies over the
/// two-thread workloads, grouped into ILP-intensive, MLP-intensive and mixed
/// groups. `per_group` limits how many Table II workloads per group are run.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn policy_comparison_two_thread(
    scale: RunScale,
    per_group: usize,
) -> Result<Vec<GroupSummary>, SimError> {
    let config = SmtConfig::baseline(2);
    let mut out = Vec::new();
    for group in [
        WorkloadGroup::IlpIntensive,
        WorkloadGroup::MlpIntensive,
        WorkloadGroup::Mixed,
    ] {
        let workloads: Vec<Workload> = two_thread_workloads()
            .into_iter()
            .filter(|w| w.group == group)
            .take(per_group)
            .collect();
        let policies = policy_comparison(
            &FetchPolicyKind::MAIN_COMPARISON,
            &workloads,
            &config,
            scale,
        )?;
        out.push(GroupSummary { group, policies });
    }
    Ok(out)
}

/// Figures 13 and 14: STP and ANTT of the main fetch policies over the four-thread
/// workloads of Table III. `limit` bounds how many of the 30 workloads are run.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn four_thread_comparison(
    scale: RunScale,
    limit: usize,
) -> Result<Vec<PolicyComparison>, SimError> {
    let config = SmtConfig::baseline(4);
    let workloads: Vec<Workload> = four_thread_workloads().into_iter().take(limit).collect();
    policy_comparison(
        &FetchPolicyKind::MAIN_COMPARISON,
        &workloads,
        &config,
        scale,
    )
}

/// Per-thread IPC values for one workload under several policies (Figures 11/12).
#[derive(Clone, Debug)]
pub struct IpcStack {
    /// Workload name.
    pub workload: String,
    /// `(policy, per-thread IPC)` pairs.
    pub per_policy: Vec<(FetchPolicyKind, Vec<f64>)>,
}

/// Figures 11 and 12: per-thread IPC stacks for the two-thread workloads of one
/// group under the main fetch policies.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn ipc_stacks(
    scale: RunScale,
    group: WorkloadGroup,
    per_group: usize,
) -> Result<Vec<IpcStack>, SimError> {
    let config = SmtConfig::baseline(2);
    let workloads: Vec<Workload> = two_thread_workloads()
        .into_iter()
        .filter(|w| w.group == group)
        .take(per_group)
        .collect();
    let comparisons = policy_comparison(
        &FetchPolicyKind::MAIN_COMPARISON,
        &workloads,
        &config,
        scale,
    )?;
    let mut stacks: Vec<IpcStack> = workloads
        .iter()
        .map(|w| IpcStack {
            workload: w.name(),
            per_policy: Vec::new(),
        })
        .collect();
    for comparison in &comparisons {
        for (i, result) in comparison.per_workload.iter().enumerate() {
            stacks[i]
                .per_policy
                .push((comparison.policy, result.per_thread_ipc.clone()));
        }
    }
    Ok(stacks)
}

/// The five alternative policies of Figures 20/21: (a) flush, (b) MLP distance +
/// flush, (c) binary MLP + flush, (d) MLP distance + flush at resource stall,
/// (e) binary MLP + flush at resource stall.
pub const ALTERNATIVE_POLICIES: [FetchPolicyKind; 5] = [
    FetchPolicyKind::Flush,
    FetchPolicyKind::MlpFlush,
    FetchPolicyKind::MlpBinaryFlush,
    FetchPolicyKind::MlpDistanceFlushAtStall,
    FetchPolicyKind::MlpBinaryFlushAtStall,
];

/// Figures 20 and 21: the alternative MLP-aware flush policies over the two-thread
/// workload groups.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn alternative_policies(
    scale: RunScale,
    per_group: usize,
) -> Result<Vec<GroupSummary>, SimError> {
    let config = SmtConfig::baseline(2);
    let mut out = Vec::new();
    for group in [
        WorkloadGroup::IlpIntensive,
        WorkloadGroup::MlpIntensive,
        WorkloadGroup::Mixed,
    ] {
        let workloads: Vec<Workload> = two_thread_workloads()
            .into_iter()
            .filter(|w| w.group == group)
            .take(per_group)
            .collect();
        let policies = policy_comparison(&ALTERNATIVE_POLICIES, &workloads, &config, scale)?;
        out.push(GroupSummary { group, policies });
    }
    Ok(out)
}

/// Figures 22 and 23: MLP-aware flush versus static partitioning and DCRA, on both
/// the two-thread and four-thread workloads.
///
/// Returns `(two_thread_groups, four_thread)` aggregates.
///
/// # Errors
///
/// Propagates simulation errors.
#[allow(clippy::type_complexity)]
pub fn partitioning_comparison(
    scale: RunScale,
    per_group: usize,
    four_thread_limit: usize,
) -> Result<(Vec<GroupSummary>, Vec<PolicyComparison>), SimError> {
    let policies = [
        FetchPolicyKind::MlpFlush,
        FetchPolicyKind::StaticPartition,
        FetchPolicyKind::Dcra,
    ];
    let config2 = SmtConfig::baseline(2);
    let mut two_thread = Vec::new();
    for group in [
        WorkloadGroup::IlpIntensive,
        WorkloadGroup::MlpIntensive,
        WorkloadGroup::Mixed,
    ] {
        let workloads: Vec<Workload> = two_thread_workloads()
            .into_iter()
            .filter(|w| w.group == group)
            .take(per_group)
            .collect();
        let comparisons = policy_comparison(&policies, &workloads, &config2, scale)?;
        two_thread.push(GroupSummary {
            group,
            policies: comparisons,
        });
    }
    let config4 = SmtConfig::baseline(4);
    let workloads4: Vec<Workload> = four_thread_workloads()
        .into_iter()
        .take(four_thread_limit)
        .collect();
    let four_thread = policy_comparison(&policies, &workloads4, &config4, scale)?;
    Ok((two_thread, four_thread))
}

/// Formats a set of group summaries as an aligned STP/ANTT text table.
pub fn format_group_summaries(groups: &[GroupSummary]) -> String {
    let mut out = String::new();
    for summary in groups {
        out.push_str(&format!("== {} workloads ==\n", summary.group.label()));
        out.push_str("policy                      STP      ANTT\n");
        for p in &summary.policies {
            out.push_str(&format!(
                "{:<26} {:>6.3}  {:>8.3}\n",
                p.policy.name(),
                p.avg_stp,
                p.avg_antt
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_flush_beats_icount_on_mlp_intensive_workload() {
        let config = SmtConfig::baseline(2);
        let workloads = vec![Workload::new(vec!["mcf", "swim"]).unwrap()];
        let results = policy_comparison(
            &[FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush],
            &workloads,
            &config,
            RunScale::test(),
        )
        .unwrap();
        let icount = &results[0];
        let mlp_flush = &results[1];
        assert!(
            mlp_flush.avg_stp >= icount.avg_stp * 0.98,
            "MLP-aware flush STP {} should not trail ICOUNT {} on an MLP-intensive mix",
            mlp_flush.avg_stp,
            icount.avg_stp
        );
    }

    #[test]
    fn two_thread_selection_respects_per_group_limit() {
        let sel = two_thread_selection(2);
        assert_eq!(sel.len(), 6);
        let sel = two_thread_selection(usize::MAX);
        assert_eq!(sel.len(), 36);
    }

    #[test]
    fn ipc_stacks_have_one_entry_per_policy() {
        let stacks = ipc_stacks(RunScale::tiny(), WorkloadGroup::MlpIntensive, 1).unwrap();
        assert_eq!(stacks.len(), 1);
        assert_eq!(
            stacks[0].per_policy.len(),
            FetchPolicyKind::MAIN_COMPARISON.len()
        );
        for (_, ipcs) in &stacks[0].per_policy {
            assert_eq!(ipcs.len(), 2);
            assert!(ipcs.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn format_output_mentions_every_policy() {
        let groups = policy_comparison_two_thread(RunScale::tiny(), 1).unwrap();
        let text = format_group_summaries(&groups);
        for p in FetchPolicyKind::MAIN_COMPARISON {
            assert!(text.contains(p.name()), "missing {}", p.name());
        }
        assert!(text.contains("== MLP workloads =="));
    }
}
