//! The named registry of built-in experiments.
//!
//! Every table and figure of the paper's evaluation section is exposed as an
//! introspectable [`ExperimentSpec`] keyed by a stable name
//! (`table1_characterization`, `fig09_two_thread_policies`, …). The CLI
//! (`smt-cli list | describe | run`) and the bench harness drive experiments
//! exclusively through this registry; `EXPERIMENTS.md` documents each entry.

use smt_sched::AllocationPolicyKind;
use smt_trace::spec as trace_spec;
use smt_types::adaptive::SelectorKind;
use smt_types::config::FetchPolicyKind;

use crate::experiments::policies::ALTERNATIVE_POLICIES;
use crate::experiments::spec::{
    AdaptiveSpec, ChipSpec, ExperimentKind, ExperimentSpec, SamplingSpec, SweepParameter, SweepSpec,
};
use crate::runner::RunScale;
use crate::workloads::{
    four_thread_workloads, representative_two_thread_workloads, two_thread_workloads, Workload,
};

/// A named collection of ready-to-run experiment specs.
#[derive(Clone, Debug)]
pub struct ExperimentRegistry {
    specs: Vec<ExperimentSpec>,
}

impl ExperimentRegistry {
    /// Builds the registry of all built-in (paper) experiments, at the
    /// default [`RunScale::standard`] scale.
    pub fn builtin() -> Self {
        let two_thread = workload_names(&two_thread_workloads());
        let four_thread = workload_names(&four_thread_workloads());
        let representative = workload_names(&representative_two_thread_workloads());
        let all_benchmarks: Vec<Vec<String>> = trace_spec::all_benchmarks()
            .into_iter()
            .map(|profile| vec![profile.name])
            .collect();
        let figure4: Vec<Vec<String>> = trace_spec::figure4_benchmarks()
            .into_iter()
            .map(|name| vec![name.to_string()])
            .collect();
        let partitioning = vec![
            FetchPolicyKind::MlpFlush,
            FetchPolicyKind::StaticPartition,
            FetchPolicyKind::Dcra,
        ];

        let specs = vec![
            single_thread(
                "table1_characterization",
                "Per-benchmark MLP characterization: long-latency loads per 1K instructions, \
                 MLP, and MLP impact",
                "Table I / Figure 1",
                ExperimentKind::Characterization,
                all_benchmarks.clone(),
            ),
            single_thread(
                "fig04_mlp_distance_cdf",
                "Predicted MLP-distance CDFs for the six most MLP-intensive benchmarks",
                "Figure 4",
                ExperimentKind::MlpDistanceCdf,
                figure4,
            ),
            single_thread(
                "fig05_prefetcher",
                "Single-thread IPC with and without the stream-buffer prefetcher",
                "Figure 5",
                ExperimentKind::PrefetcherImpact,
                all_benchmarks.clone(),
            ),
            single_thread(
                "fig06_08_predictor_accuracy",
                "Long-latency load, binary MLP, and MLP-distance predictor accuracies",
                "Figures 6-8",
                ExperimentKind::PredictorAccuracy,
                all_benchmarks,
            ),
            grid(
                "fig09_two_thread_policies",
                "STP and ANTT of the six main fetch policies over the Table II two-thread \
                 workloads (per-thread IPCs give Figures 11/12)",
                "Figures 9-12",
                FetchPolicyKind::MAIN_COMPARISON.to_vec(),
                two_thread.clone(),
                None,
            ),
            grid(
                "fig13_four_thread_policies",
                "STP and ANTT of the six main fetch policies over the Table III four-thread \
                 workloads",
                "Figures 13/14",
                FetchPolicyKind::MAIN_COMPARISON.to_vec(),
                four_thread.clone(),
                None,
            ),
            grid(
                "fig15_memory_latency_sweep",
                "Main-memory latency sweep (200-800 cycles) over representative two-thread \
                 workloads",
                "Figures 15/16",
                FetchPolicyKind::MAIN_COMPARISON.to_vec(),
                representative.clone(),
                Some(SweepSpec {
                    parameter: SweepParameter::MemoryLatency,
                    values: vec![200, 400, 600, 800],
                }),
            ),
            grid(
                "fig17_window_size_sweep",
                "Window size sweep (128-1024 ROB entries, resources scaled proportionally) \
                 over representative two-thread workloads",
                "Figures 17/18",
                FetchPolicyKind::MAIN_COMPARISON.to_vec(),
                representative,
                Some(SweepSpec {
                    parameter: SweepParameter::WindowSize,
                    values: vec![128, 256, 512, 1024],
                }),
            ),
            {
                let mut spec = grid(
                    "sampled_4t_policies",
                    "Sampled-mode STP and ANTT of ICOUNT versus MLP-aware flush over the \
                     Table III four-thread workloads: SMARTS-style fast-forward/measure \
                     interleaving, shared warm checkpoints, per-metric confidence intervals",
                    "Figures 13/14",
                    vec![FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush],
                    four_thread.clone(),
                    None,
                );
                spec.sampling = Some(SamplingSpec::default());
                spec
            },
            grid(
                "fig20_alternative_policies",
                "The five alternative MLP-aware flush policies over the Table II two-thread \
                 workloads",
                "Figures 20/21",
                ALTERNATIVE_POLICIES.to_vec(),
                two_thread.clone(),
                None,
            ),
            grid(
                "fig22_partitioning_two_thread",
                "MLP-aware flush versus static partitioning and DCRA, two-thread workloads",
                "Figures 22/23",
                partitioning.clone(),
                two_thread,
                None,
            ),
            grid(
                "fig22_partitioning_four_thread",
                "MLP-aware flush versus static partitioning and DCRA, four-thread workloads",
                "Figures 22/23",
                partitioning,
                four_thread,
                None,
            ),
            chip_grid(
                "chip_2c2t_allocation_matrix",
                "Fetch policy x thread-to-core allocation matrix on a 2-core x 2-thread chip with a shared LLC and contended memory bus",
                2,
                vec![
                    vec_of(&["mcf", "swim", "perlbmk", "mesa"]),
                    vec_of(&["vortex", "parser", "crafty", "twolf"]),
                    vec_of(&["applu", "galgel", "swim", "mesa"]),
                    vec_of(&["mcf", "galgel", "vortex", "gcc"]),
                ],
            ),
            adaptive_grid(
                "adaptive_2t",
                "Policy selector x candidate-set matrix over representative two-thread workloads: static baselines versus sampling and MLP-threshold dynamic selection",
                workload_names(&representative_two_thread_workloads()),
                None,
            ),
            adaptive_grid(
                "adaptive_4t",
                "Policy selector x candidate-set matrix over mixed ILP/MLP four-thread workloads, where phasic behaviour gives dynamic selection room to beat every static policy",
                vec![
                    vec_of(&["mcf", "swim", "perlbmk", "mesa"]),
                    vec_of(&["swim", "perlbmk", "galgel", "twolf"]),
                    vec_of(&["equake", "perlbmk", "applu", "vortex"]),
                    vec_of(&["gzip", "wupwise", "apsi", "twolf"]),
                ],
                None,
            ),
            adaptive_grid(
                "chip_2c2t_adaptive",
                "Per-core dynamic policy selection on a 2-core x 2-thread chip with a shared LLC and contended bus: each core switches policies on its own interval telemetry",
                vec![
                    vec_of(&["mcf", "swim", "perlbmk", "mesa"]),
                    vec_of(&["mcf", "galgel", "vortex", "gcc"]),
                ],
                Some(ChipSpec {
                    num_cores: 2,
                    allocations: vec![AllocationPolicyKind::RoundRobin],
                    bus_bytes_per_cycle: 16,
                    shared_llc: None,
                chip_threads: None,
                }),
            ),
            grid(
                "trace_2t_replay",
                "ICOUNT versus MLP-aware flush on a two-thread workload replayed from the \
                 checked-in `.smtt` golden trace: the trace-driven ingestion path exercised \
                 end to end from on-disk records",
                "",
                vec![FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush],
                vec![vec_of(&[
                    "trace:tests/golden/trace_2t_replay.smtt",
                    "trace:tests/golden/trace_2t_replay.smtt",
                ])],
                None,
            ),
            chip_grid(
                "chip_4c2t_allocation_matrix",
                "Fetch policy x thread-to-core allocation matrix on a 4-core x 2-thread chip with a shared LLC and contended memory bus",
                4,
                vec![
                    vec_of(&[
                        "mcf", "swim", "perlbmk", "mesa", "vortex", "parser", "crafty", "twolf",
                    ]),
                    vec_of(&[
                        "applu", "galgel", "swim", "mesa", "gzip", "wupwise", "apsi", "twolf",
                    ]),
                ],
            ),
        ];
        ExperimentRegistry { specs }
    }

    /// The specs in registration (paper) order.
    pub fn specs(&self) -> &[ExperimentSpec] {
        &self.specs
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.specs.iter().map(|s| s.name.as_str()).collect()
    }

    /// Looks up one spec by name.
    pub fn get(&self, name: &str) -> Option<&ExperimentSpec> {
        self.specs.iter().find(|s| s.name == name)
    }
}

impl Default for ExperimentRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

fn workload_names(workloads: &[Workload]) -> Vec<Vec<String>> {
    workloads.iter().map(|w| w.benchmarks.clone()).collect()
}

fn vec_of(benchmarks: &[&str]) -> Vec<String> {
    benchmarks.iter().map(|b| b.to_string()).collect()
}

/// A chip-level policy x allocation matrix over the paper's two headline
/// fetch policies and every implemented allocation policy.
fn chip_grid(
    name: &str,
    title: &str,
    num_cores: usize,
    workloads: Vec<Vec<String>>,
) -> ExperimentSpec {
    ExperimentSpec {
        name: name.to_string(),
        title: title.to_string(),
        paper_ref: String::new(),
        kind: ExperimentKind::ChipGrid,
        policies: vec![FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush],
        workloads,
        sweep: None,
        overrides: None,
        chip: Some(ChipSpec {
            num_cores,
            allocations: AllocationPolicyKind::ALL.to_vec(),
            bus_bytes_per_cycle: 16,
            shared_llc: None,
            chip_threads: None,
        }),
        adaptive: None,
        resilience: None,
        sampling: None,
        scale: RunScale::standard(),
    }
}

/// An adaptive-engine selector x candidate-set matrix. Both orderings of the
/// ICOUNT / MLP-aware-flush pair are present, so under the `static` selector
/// the grid contains both static baselines and the dynamic selectors can be
/// compared against the best of them inside one report.
fn adaptive_grid(
    name: &str,
    title: &str,
    workloads: Vec<Vec<String>>,
    chip: Option<ChipSpec>,
) -> ExperimentSpec {
    ExperimentSpec {
        name: name.to_string(),
        title: title.to_string(),
        paper_ref: String::new(),
        kind: ExperimentKind::AdaptiveGrid,
        policies: Vec::new(),
        workloads,
        sweep: None,
        overrides: None,
        chip,
        adaptive: Some(AdaptiveSpec {
            selectors: SelectorKind::ALL.to_vec(),
            candidate_sets: vec![
                vec![FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush],
                vec![FetchPolicyKind::MlpFlush, FetchPolicyKind::Icount],
            ],
            interval_cycles: None,
            sample_intervals: None,
            commit_intervals: None,
            lll_per_kinst_threshold: None,
            mlp_threshold: None,
        }),
        resilience: None,
        sampling: None,
        scale: RunScale::standard(),
    }
}

fn single_thread(
    name: &str,
    title: &str,
    paper_ref: &str,
    kind: ExperimentKind,
    workloads: Vec<Vec<String>>,
) -> ExperimentSpec {
    ExperimentSpec {
        name: name.to_string(),
        title: title.to_string(),
        paper_ref: paper_ref.to_string(),
        kind,
        policies: Vec::new(),
        workloads,
        sweep: None,
        overrides: None,
        chip: None,
        adaptive: None,
        resilience: None,
        sampling: None,
        scale: RunScale::standard(),
    }
}

fn grid(
    name: &str,
    title: &str,
    paper_ref: &str,
    policies: Vec<FetchPolicyKind>,
    workloads: Vec<Vec<String>>,
    sweep: Option<SweepSpec>,
) -> ExperimentSpec {
    ExperimentSpec {
        name: name.to_string(),
        title: title.to_string(),
        paper_ref: paper_ref.to_string(),
        kind: ExperimentKind::PolicyGrid,
        policies,
        workloads,
        sweep,
        overrides: None,
        chip: None,
        adaptive: None,
        resilience: None,
        sampling: None,
        scale: RunScale::standard(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_spec_validates() {
        let registry = ExperimentRegistry::builtin();
        assert!(registry.specs().len() >= 12);
        for spec in registry.specs() {
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn names_are_unique_and_lookup_works() {
        let registry = ExperimentRegistry::builtin();
        let names = registry.names();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
        let fig09 = registry.get("fig09_two_thread_policies").unwrap();
        assert_eq!(fig09.workloads.len(), 36);
        assert_eq!(fig09.policies.len(), 6);
        assert!(registry.get("fig99_imaginary").is_none());
    }

    #[test]
    fn every_builtin_spec_round_trips_through_toml() {
        for spec in ExperimentRegistry::builtin().specs() {
            let text = toml::to_string(spec).unwrap();
            let back: ExperimentSpec =
                toml::from_str(&text).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(&back, spec, "{} did not round-trip", spec.name);
        }
    }

    #[test]
    fn chip_matrices_cover_policies_and_allocations() {
        let registry = ExperimentRegistry::builtin();
        for (name, cores, threads) in [
            ("chip_2c2t_allocation_matrix", 2usize, 4usize),
            ("chip_4c2t_allocation_matrix", 4, 8),
        ] {
            let spec = registry.get(name).unwrap();
            assert_eq!(spec.kind, ExperimentKind::ChipGrid);
            let chip = spec.chip.as_ref().unwrap();
            assert_eq!(chip.num_cores, cores);
            assert_eq!(chip.allocations.len(), AllocationPolicyKind::ALL.len());
            assert!(chip.bus_bytes_per_cycle > 0, "chip matrices model the bus");
            for workload in &spec.workloads {
                assert_eq!(workload.len(), threads);
            }
        }
    }

    #[test]
    fn sweeps_cover_the_paper_parameter_values() {
        let registry = ExperimentRegistry::builtin();
        let latency = registry.get("fig15_memory_latency_sweep").unwrap();
        assert_eq!(
            latency.sweep.as_ref().unwrap().values,
            vec![200, 400, 600, 800]
        );
        let window = registry.get("fig17_window_size_sweep").unwrap();
        assert_eq!(
            window.sweep.as_ref().unwrap().values,
            vec![128, 256, 512, 1024]
        );
    }
}
