//! Microarchitecture sweeps (Section 6.4): main-memory latency (Figures 15/16) and
//! processor window size (Figures 17/18).

use smt_types::config::FetchPolicyKind;
use smt_types::{SimError, SmtConfig};

use crate::experiments::policies::{policy_comparison, PolicyComparison};
use crate::runner::RunScale;
use crate::workloads::representative_two_thread_workloads;

/// The aggregate results of all policies at one parameter value of a sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The swept parameter value (memory latency in cycles, or ROB entries).
    pub parameter: u64,
    /// One aggregate per policy.
    pub policies: Vec<PolicyComparison>,
}

impl SweepPoint {
    /// STP of `policy` normalized to ICOUNT at the same parameter value, as the
    /// paper plots it.
    pub fn stp_relative_to_icount(&self, policy: FetchPolicyKind) -> Option<f64> {
        let icount = self
            .policies
            .iter()
            .find(|p| p.policy == FetchPolicyKind::Icount)?;
        let target = self.policies.iter().find(|p| p.policy == policy)?;
        Some(target.avg_stp / icount.avg_stp)
    }

    /// ANTT of `policy` normalized to ICOUNT at the same parameter value.
    pub fn antt_relative_to_icount(&self, policy: FetchPolicyKind) -> Option<f64> {
        let icount = self
            .policies
            .iter()
            .find(|p| p.policy == FetchPolicyKind::Icount)?;
        let target = self.policies.iter().find(|p| p.policy == policy)?;
        Some(target.avg_antt / icount.avg_antt)
    }
}

/// Figures 15 and 16: sweep the main-memory access latency (the paper uses 200,
/// 400, 600 and 800 cycles) over a representative set of two-thread workloads.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn memory_latency_sweep(
    latencies: &[u64],
    scale: RunScale,
) -> Result<Vec<SweepPoint>, SimError> {
    let workloads = representative_two_thread_workloads();
    let mut points = Vec::with_capacity(latencies.len());
    for &latency in latencies {
        let config = SmtConfig::baseline(2).with_memory_latency(latency);
        let policies = policy_comparison(
            &FetchPolicyKind::MAIN_COMPARISON,
            &workloads,
            &config,
            scale,
        )?;
        points.push(SweepPoint {
            parameter: latency,
            policies,
        });
    }
    Ok(points)
}

/// Figures 17 and 18: sweep the window size (ROB 128–1024 with the LSQ, issue
/// queues and rename registers scaled proportionally, Section 6.4.2).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn window_size_sweep(rob_sizes: &[u32], scale: RunScale) -> Result<Vec<SweepPoint>, SimError> {
    let workloads = representative_two_thread_workloads();
    let mut points = Vec::with_capacity(rob_sizes.len());
    for &rob in rob_sizes {
        let config = SmtConfig::baseline(2).with_window_size(rob);
        let policies = policy_comparison(
            &FetchPolicyKind::MAIN_COMPARISON,
            &workloads,
            &config,
            scale,
        )?;
        points.push(SweepPoint {
            parameter: rob as u64,
            policies,
        });
    }
    Ok(points)
}

/// Formats a sweep as a text table of STP and ANTT relative to ICOUNT.
pub fn format_sweep(points: &[SweepPoint], parameter_name: &str) -> String {
    let mut out =
        format!("{parameter_name:>10}  policy                      STP/ICOUNT  ANTT/ICOUNT\n");
    for point in points {
        for p in &point.policies {
            out.push_str(&format!(
                "{:>10}  {:<26} {:>10.3}  {:>11.3}\n",
                point.parameter,
                p.policy.name(),
                point.stp_relative_to_icount(p.policy).unwrap_or(f64::NAN),
                point.antt_relative_to_icount(p.policy).unwrap_or(f64::NAN),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_latency_sweep_produces_points() {
        let points = memory_latency_sweep(&[200, 600], RunScale::tiny()).unwrap();
        assert_eq!(points.len(), 2);
        for point in &points {
            assert_eq!(point.policies.len(), FetchPolicyKind::MAIN_COMPARISON.len());
            let rel = point
                .stp_relative_to_icount(FetchPolicyKind::MlpFlush)
                .unwrap();
            assert!(rel > 0.5 && rel < 2.0, "relative STP {rel} out of range");
        }
        let text = format_sweep(&points, "mem-lat");
        assert!(text.contains("mlp-flush"));
    }

    #[test]
    fn window_sweep_scales_configuration() {
        let points = window_size_sweep(&[128], RunScale::tiny()).unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].parameter, 128);
        assert!(points[0]
            .antt_relative_to_icount(FetchPolicyKind::Flush)
            .is_some());
    }
}
