//! Table I / Figure 1: per-benchmark MLP characterization.
//!
//! For every SPEC CPU2000 benchmark the paper reports the number of long-latency
//! loads per 1 K instructions, the amount of MLP (Chou et al. definition), the
//! impact of MLP on single-thread performance (speedup of overlapping independent
//! long-latency loads versus serializing them), and the resulting ILP/MLP
//! classification (MLP impact > 10 %).

use smt_trace::spec;
use smt_trace::WorkloadClass;
use smt_types::{SimError, SmtConfig};

use crate::runner::{run_single_thread, RunScale};

/// One row of Table I, with both the measured values and the values the paper
/// reports (for side-by-side comparison in `EXPERIMENTS.md`).
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Reference input name.
    pub input: String,
    /// Measured long-latency loads per 1 K committed instructions.
    pub lll_per_kinst: f64,
    /// Measured MLP (average outstanding long-latency loads when ≥ 1 outstanding).
    pub mlp: f64,
    /// Measured MLP impact: `1 − cycles_overlapped / cycles_serialized`.
    pub mlp_impact: f64,
    /// Classification implied by the measured MLP impact (> 10 % ⇒ MLP).
    pub measured_class: WorkloadClass,
    /// Long-latency loads per 1 K instructions reported in the paper.
    pub paper_lll_per_kinst: f64,
    /// MLP reported in the paper.
    pub paper_mlp: f64,
    /// Classification reported in the paper.
    pub paper_class: WorkloadClass,
    /// Single-thread IPC on the characterization configuration.
    pub ipc: f64,
}

/// Runs the Table I characterization for every benchmark.
///
/// The characterization mirrors the paper's setup: a single-threaded 256-entry ROB
/// processor; the hardware prefetcher is disabled so the raw miss behaviour of the
/// benchmark (rather than the prefetcher) is characterized.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn table1(scale: RunScale) -> Result<Vec<Table1Row>, SimError> {
    let mut rows = Vec::new();
    for profile in spec::all_benchmarks() {
        rows.push(characterize(&profile.name, scale)?);
    }
    Ok(rows)
}

/// Characterizes a single benchmark (one Table I row).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn characterize(benchmark: &str, scale: RunScale) -> Result<Table1Row, SimError> {
    let profile = spec::benchmark(benchmark)?;
    let base = SmtConfig::baseline(1).with_prefetcher(false);
    let overlapped = run_single_thread(benchmark, &base, scale)?;
    let mut serialized_cfg = base.clone();
    serialized_cfg.serialize_long_latency_loads = true;
    let serialized = run_single_thread(benchmark, &serialized_cfg, scale)?;

    let t = &overlapped.threads[0];
    let mlp_impact = if serialized.cycles == 0 {
        0.0
    } else {
        1.0 - overlapped.cycles as f64 / serialized.cycles as f64
    };
    let measured_class = if mlp_impact > 0.10 {
        WorkloadClass::Mlp
    } else {
        WorkloadClass::Ilp
    };
    Ok(Table1Row {
        benchmark: profile.name.clone(),
        input: profile.input.clone(),
        lll_per_kinst: t.lll_per_kilo_instruction(),
        mlp: t.measured_mlp(),
        mlp_impact,
        measured_class,
        paper_lll_per_kinst: profile.lll_per_kinst,
        paper_mlp: profile.target_mlp,
        paper_class: profile.class,
        ipc: t.ipc(overlapped.cycles),
    })
}

/// Formats the Table I rows as an aligned text table (used by examples and the
/// benchmark harness).
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out = String::from(
        "benchmark    input      LLL/1K  (paper)   MLP  (paper)  MLP-impact  class (paper)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:<10} {:>6.2} {:>8.2} {:>5.2} {:>8.2} {:>10.1}%  {:<4} ({})\n",
            r.benchmark,
            r.input,
            r.lll_per_kinst,
            r.paper_lll_per_kinst,
            r.mlp,
            r.paper_mlp,
            r.mlp_impact * 100.0,
            r.measured_class.label(),
            r.paper_class.label(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcf_is_characterized_as_mlp_intensive() {
        let row = characterize("mcf", RunScale::test()).unwrap();
        assert!(
            row.lll_per_kinst > 5.0,
            "mcf LLL/1K = {}",
            row.lll_per_kinst
        );
        assert!(row.mlp > 1.5, "mcf MLP = {}", row.mlp);
        assert!(row.mlp_impact > 0.10, "mcf MLP impact = {}", row.mlp_impact);
        assert_eq!(row.measured_class, WorkloadClass::Mlp);
        assert_eq!(row.paper_class, WorkloadClass::Mlp);
    }

    #[test]
    fn bzip2_is_characterized_as_ilp_intensive() {
        // At unit-test scale a handful of cold warm-region misses add noise, so the
        // bound is looser than the paper's 10% classification threshold; the
        // ordering against a genuinely MLP-intensive benchmark is what matters.
        let bzip2 = characterize("bzip2", RunScale::test()).unwrap();
        let mcf = characterize("mcf", RunScale::test()).unwrap();
        assert!(
            bzip2.lll_per_kinst < 2.0,
            "bzip2 LLL/1K = {}",
            bzip2.lll_per_kinst
        );
        assert!(
            bzip2.mlp_impact < 0.20,
            "bzip2 MLP impact = {}",
            bzip2.mlp_impact
        );
        assert!(
            bzip2.mlp_impact < mcf.mlp_impact,
            "bzip2 ({}) should be far less MLP sensitive than mcf ({})",
            bzip2.mlp_impact,
            mcf.mlp_impact
        );
        assert_eq!(bzip2.paper_class, WorkloadClass::Ilp);
    }

    #[test]
    fn formatting_contains_all_rows() {
        let rows = vec![
            characterize("mcf", RunScale::tiny()).unwrap(),
            characterize("gcc", RunScale::tiny()).unwrap(),
        ];
        let text = format_table1(&rows);
        assert!(text.contains("mcf"));
        assert!(text.contains("gcc"));
        assert_eq!(text.lines().count(), 3);
    }
}
