//! Experiment runners: one module per table/figure of the paper's evaluation,
//! plus the declarative experiment API.
//!
//! Every legacy runner takes a [`crate::runner::RunScale`] so the same code
//! powers the fast regression tests, the examples, and the Criterion benchmark
//! harness that regenerates the paper's numbers (see `EXPERIMENTS.md`).
//!
//! The declarative layer ([`spec`], [`registry`], [`engine`], [`report`])
//! exposes every table/figure as a named, serde-serializable
//! [`spec::ExperimentSpec`] that the [`engine`] runs in parallel across OS
//! threads with a shared single-threaded reference cache, producing a uniform
//! [`report::ExperimentReport`]. The legacy entry points below are
//! re-expressed over the same engine, so both paths produce identical
//! numbers.

pub mod characterization;
pub mod engine;
pub mod policies;
pub mod predictors;
pub mod registry;
pub mod report;
pub mod spec;
pub mod sweeps;

pub use characterization::{characterize, format_table1, table1, Table1Row};
pub use engine::{run_spec, run_spec_with_policy, run_spec_with_threads, RunPolicy};
pub use policies::{
    alternative_policies, format_group_summaries, four_thread_comparison, ipc_stacks,
    partitioning_comparison, policy_comparison, policy_comparison_two_thread, GroupSummary,
    IpcStack, PolicyComparison, ALTERNATIVE_POLICIES,
};
pub use predictors::{
    figure4, figure5, figure6, figure7, figure8, predictor_characterization, MlpDistanceCdf,
    PredictorAccuracyRow, PrefetchRow,
};
pub use registry::ExperimentRegistry;
pub use report::{BenchRow, ExperimentReport, PolicyCell, SummaryRow};
pub use spec::{
    AdaptiveSpec, ChipSpec, ConfigOverrides, ExperimentKind, ExperimentSpec, ResilienceSpec,
    SamplingSpec, SweepParameter, SweepSpec,
};
pub use sweeps::{format_sweep, memory_latency_sweep, window_size_sweep, SweepPoint};
