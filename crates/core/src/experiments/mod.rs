//! Experiment runners: one module per table/figure of the paper's evaluation.
//!
//! Every runner takes a [`crate::runner::RunScale`] so the same code powers the
//! fast regression tests, the examples, and the Criterion benchmark harness that
//! regenerates the paper's numbers (see `EXPERIMENTS.md`).

pub mod characterization;
pub mod policies;
pub mod predictors;
pub mod sweeps;

pub use characterization::{characterize, format_table1, table1, Table1Row};
pub use policies::{
    alternative_policies, format_group_summaries, four_thread_comparison, ipc_stacks,
    partitioning_comparison, policy_comparison, policy_comparison_two_thread, GroupSummary,
    IpcStack, PolicyComparison, ALTERNATIVE_POLICIES,
};
pub use predictors::{
    figure4, figure5, figure6, figure7, figure8, predictor_characterization, MlpDistanceCdf,
    PredictorAccuracyRow, PrefetchRow,
};
pub use sweeps::{format_sweep, memory_latency_sweep, window_size_sweep, SweepPoint};
