//! Simulator-throughput harness: a fixed scenario matrix timed in wall-clock
//! seconds, reported as simulated cycles/sec and committed instructions/sec.
//!
//! The matrix covers 1-, 2- and 4-thread runs over ILP- and MLP-heavy mixes
//! under the ICOUNT baseline and the paper's MLP-aware flush policy — plus a
//! chip-level CMP row, an adaptive-engine row and a sampled-execution row —
//! so a single `smt-cli bench` run characterizes the hot path for every
//! pipeline shape the experiments exercise. Results serialize
//! to a stable JSON schema; `BENCH_throughput.json` is an **append-only
//! [`ThroughputTrajectory`]**: one dated [`ThroughputReport`] entry per
//! recorded commit, so the whole perf history stays recoverable from the
//! file. [`ThroughputReport::compare`] diffs two reports scenario by
//! scenario; CI compares against [`ThroughputTrajectory::latest`].

use std::time::Instant; // analyze: allow(determinism) reason="wall-clock timing of the benchmark harness itself, not simulated state"

use serde::{Deserialize, Serialize};
use smt_types::adaptive::{AdaptiveConfig, SelectorKind};
use smt_types::config::FetchPolicyKind;
use smt_types::{SimError, SmtConfig};

use crate::chip::ChipSimulator;
use crate::pipeline::sampling::SampledRun;
use crate::pipeline::{SimOptions, SmtSimulator};
use crate::runner::{build_trace, RunScale};
use smt_types::{ChipConfig, MachineStats, SamplingConfig};

/// Version of one report's schema. Bump only when a field is removed or
/// changes meaning; additions keep the version.
pub const SCHEMA_VERSION: u32 = 1;

/// Version of the on-disk `BENCH_throughput.json` trajectory schema
/// (an array of dated report entries; version 1 was a single overwritten
/// report).
pub const TRAJECTORY_SCHEMA_VERSION: u32 = 2;

/// Name of the 4-thread baseline scenario whose cycles/sec is the headline
/// trajectory number compared across commits.
pub const BASELINE_SCENARIO: &str = "4t_mix_icount";

/// Instruction-budget multiplier for sampled matrix rows: they run this many
/// times the exact rows' per-thread budget, so a sampled row's wall-clock
/// column demonstrates the fast-forward speedup side by side with the same
/// workload measured exactly.
pub const SAMPLED_BUDGET_MULTIPLIER: u64 = 10;

/// One cell of the fixed scenario matrix.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BenchScenario {
    /// Stable scenario identifier (`<threads>t_<mix>_<policy>`, or
    /// `<cores>c<threads>t_<mix>_<policy>` for chip rows).
    pub name: &'static str,
    /// Benchmarks, one per hardware thread (across all cores, core-major).
    pub benchmarks: &'static [&'static str],
    /// Fetch policy under test (the *initial* policy for adaptive rows).
    pub policy: FetchPolicyKind,
    /// Number of cores: 1 runs the single-core machine, >1 a chip with
    /// `benchmarks.len() / cores` threads per core (round-robin placement by
    /// construction of the list).
    pub cores: usize,
    /// Adaptive rows: the policy selector driving runtime switching between
    /// `policy` and the MLP-aware flush policy; `None` runs the static
    /// machine.
    pub selector: Option<SelectorKind>,
    /// Sampled rows: run through [`SmtSimulator::run_sampled`] at
    /// [`SAMPLED_BUDGET_MULTIPLIER`] times the exact rows' instruction
    /// budget, timing the fast-forward/measure interleaving.
    pub sampled: bool,
    /// Chip rows: worker threads stepping the chip's cores (1 = serial
    /// loop). Parallel rows exist to measure the pool's speedup on the same
    /// workload as a serial row — simulated results are bit-for-bit equal.
    pub chip_threads: usize,
}

/// The benchmark pool chip rows draw from (2 threads per core, core-major).
const CHIP_MIX: [&str; 16] = [
    "mcf", "swim", "perlbmk", "mesa", "vortex", "parser", "crafty", "twolf", "applu", "galgel",
    "gzip", "wupwise", "apsi", "art", "equake", "gcc",
];

/// The chip scenario at `cores` cores x 2 threads (the `--cores` bench row).
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] when `cores` is outside `2..=8`.
pub fn chip_scenario(cores: usize) -> Result<BenchScenario, SimError> {
    let name = match cores {
        2 => "2c2t_mix_icount",
        3 => "3c2t_mix_icount",
        4 => "4c2t_mix_icount",
        5 => "5c2t_mix_icount",
        6 => "6c2t_mix_icount",
        7 => "7c2t_mix_icount",
        8 => "8c2t_mix_icount",
        other => {
            return Err(SimError::invalid_config(format!(
                "chip bench scenarios support 2..=8 cores, got {other}"
            )))
        }
    };
    Ok(BenchScenario {
        name,
        benchmarks: &CHIP_MIX[..cores * 2],
        policy: FetchPolicyKind::Icount,
        cores,
        selector: None,
        sampled: false,
        chip_threads: 1,
    })
}

/// The adaptive-engine scenario: the 4-thread mix under runtime policy
/// switching between ICOUNT and the MLP-aware flush policy, driven by
/// `selector` at the `interval` cycle granularity (defaults:
/// [`SelectorKind::Sampling`],
/// [`AdaptiveConfig::DEFAULT_INTERVAL_CYCLES`]). The scenario name is stable
/// across selectors so trajectory entries stay comparable.
pub fn adaptive_scenario(selector: Option<SelectorKind>) -> BenchScenario {
    BenchScenario {
        name: "4t_mix_adaptive",
        benchmarks: &["mcf", "swim", "perlbmk", "mesa"],
        policy: FetchPolicyKind::Icount,
        cores: 1,
        selector: Some(selector.unwrap_or(SelectorKind::Sampling)),
        sampled: false,
        chip_threads: 1,
    }
}

/// The fixed scenario matrix: 1T/2T/4T, ILP- and MLP-heavy mixes, ICOUNT
/// baseline plus the MLP-aware flush policy.
pub fn scenario_matrix() -> Vec<BenchScenario> {
    use FetchPolicyKind::{Icount, MlpFlush};
    let mut matrix = vec![
        BenchScenario {
            name: "1t_ilp_icount",
            benchmarks: &["gcc"],
            policy: Icount,
            cores: 1,
            selector: None,
            sampled: false,
            chip_threads: 1,
        },
        BenchScenario {
            name: "1t_mlp_icount",
            benchmarks: &["mcf"],
            policy: Icount,
            cores: 1,
            selector: None,
            sampled: false,
            chip_threads: 1,
        },
        BenchScenario {
            name: "2t_ilp_icount",
            benchmarks: &["gcc", "gap"],
            policy: Icount,
            cores: 1,
            selector: None,
            sampled: false,
            chip_threads: 1,
        },
        BenchScenario {
            name: "2t_mlp_icount",
            benchmarks: &["mcf", "swim"],
            policy: Icount,
            cores: 1,
            selector: None,
            sampled: false,
            chip_threads: 1,
        },
        BenchScenario {
            name: "2t_mlp_mlpflush",
            benchmarks: &["mcf", "swim"],
            policy: MlpFlush,
            cores: 1,
            selector: None,
            sampled: false,
            chip_threads: 1,
        },
        BenchScenario {
            name: "4t_ilp_icount",
            benchmarks: &["vortex", "parser", "crafty", "twolf"],
            policy: Icount,
            cores: 1,
            selector: None,
            sampled: false,
            chip_threads: 1,
        },
        BenchScenario {
            name: "4t_mix_icount",
            benchmarks: &["mcf", "swim", "perlbmk", "mesa"],
            policy: Icount,
            cores: 1,
            selector: None,
            sampled: false,
            chip_threads: 1,
        },
        BenchScenario {
            name: "4t_mix_mlpflush",
            benchmarks: &["mcf", "swim", "perlbmk", "mesa"],
            policy: MlpFlush,
            cores: 1,
            selector: None,
            sampled: false,
            chip_threads: 1,
        },
        BenchScenario {
            name: "4t_mlp_mlpflush",
            benchmarks: &["applu", "galgel", "swim", "mesa"],
            policy: MlpFlush,
            cores: 1,
            selector: None,
            sampled: false,
            chip_threads: 1,
        },
        // The same workload as `4t_mlp_mlpflush` in sampled mode at ten
        // times the budget: its wall-clock and instrs/s columns sit next to
        // the exact row's, making the sampling speedup a standing bench fact.
        BenchScenario {
            name: "4t_mlp_sampled",
            benchmarks: &["applu", "galgel", "swim", "mesa"],
            policy: MlpFlush,
            cores: 1,
            selector: None,
            sampled: true,
            chip_threads: 1,
        },
    ];
    matrix.push(chip_scenario(2).expect("2-core chip scenario is always valid"));
    // The serial 4-core chip row's workload stepped by a 2-worker pool: the
    // wall-clock delta between this row and a serial `--cores 4` run is the
    // standing measurement of what intra-chip parallelism buys.
    matrix.push(BenchScenario {
        name: "4c2t_mix_chipthreads",
        benchmarks: &CHIP_MIX[..8],
        policy: FetchPolicyKind::Icount,
        cores: 4,
        selector: None,
        sampled: false,
        chip_threads: 2,
    });
    matrix.push(adaptive_scenario(None));
    matrix
}

/// Run-length and repetition knobs for the harness.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BenchOptions {
    /// Instruction budget per thread for every scenario (no warm-up: the whole
    /// run is timed and counted).
    pub instructions_per_thread: u64,
    /// Timed repetitions per scenario; the best (lowest wall time) is reported.
    pub runs: u32,
    /// Whether this is a reduced-size smoke run (recorded in the report).
    pub quick: bool,
    /// Additional chip scenario at this core count (`smt-cli bench --cores`),
    /// on top of the matrix's built-in 2-core row.
    pub extra_chip_cores: Option<usize>,
    /// Selector override for the adaptive matrix row (`smt-cli bench
    /// --selector`); the row keeps its stable name either way.
    pub adaptive_selector: Option<SelectorKind>,
    /// Interval-length override in cycles for the adaptive matrix row
    /// (`smt-cli bench --interval`).
    pub adaptive_interval: Option<u64>,
    /// Worker-thread override for every chip row (`smt-cli bench
    /// --chip-threads`); `None` keeps each scenario's own setting.
    pub chip_threads: Option<usize>,
}

impl BenchOptions {
    /// The standard measurement configuration (30 K instructions, best of 3).
    pub fn standard() -> Self {
        BenchOptions {
            instructions_per_thread: 30_000,
            runs: 3,
            quick: false,
            extra_chip_cores: None,
            adaptive_selector: None,
            adaptive_interval: None,
            chip_threads: None,
        }
    }

    /// A fast smoke configuration for CI (3 K instructions, single run).
    pub fn quick() -> Self {
        BenchOptions {
            instructions_per_thread: 3_000,
            runs: 1,
            quick: true,
            extra_chip_cores: None,
            adaptive_selector: None,
            adaptive_interval: None,
            chip_threads: None,
        }
    }
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self::standard()
    }
}

/// Timed result of one scenario.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ScenarioResult {
    /// Scenario identifier from [`scenario_matrix`].
    pub name: String,
    /// Hardware thread count.
    pub threads: usize,
    /// Benchmarks, one per thread.
    pub benchmarks: Vec<String>,
    /// Fetch policy under test.
    pub policy: FetchPolicyKind,
    /// Number of cores (`None` in pre-chip reports means 1).
    pub cores: Option<usize>,
    /// Adaptive rows: the policy selector used (`None` for static rows and
    /// pre-adaptive reports).
    pub selector: Option<SelectorKind>,
    /// Chip rows: worker threads that stepped the cores (`None` for
    /// single-core rows and pre-parallelism reports).
    pub chip_threads: Option<usize>,
    /// Instruction budget per thread.
    pub instructions_per_thread: u64,
    /// Simulated cycles of one run (identical across repetitions).
    pub simulated_cycles: u64,
    /// Committed instructions summed over all threads.
    pub committed_instructions: u64,
    /// Aggregate IPC of the simulated machine (sanity anchor for the run).
    pub total_ipc: f64,
    /// Best wall-clock seconds over the repetitions.
    pub wall_seconds: f64,
    /// Simulated cycles per wall-clock second (the headline metric).
    pub cycles_per_second: f64,
    /// Committed instructions per wall-clock second.
    pub instructions_per_second: f64,
    /// Number of timed repetitions.
    pub runs: u32,
    /// Sampled rows: measurement windows contributing to the estimates
    /// (`None` for exact rows and pre-sampling reports).
    pub sampled_windows: Option<u32>,
    /// Sampled rows: fraction of each sampling unit simulated in detail
    /// (`None` for exact rows and pre-sampling reports).
    pub detailed_fraction: Option<f64>,
}

/// A full harness run: every scenario of the matrix under one [`BenchOptions`].
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ThroughputReport {
    /// Schema version of this report ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Whether this was a reduced-size smoke run.
    pub quick: bool,
    /// Instruction budget per thread used for every scenario.
    pub instructions_per_thread: u64,
    /// Timed repetitions per scenario.
    pub runs_per_scenario: u32,
    /// Git commit the binary was built from, when known.
    pub commit: Option<String>,
    /// One result per matrix scenario, in matrix order.
    pub scenarios: Vec<ScenarioResult>,
}

/// One row of a scenario-by-scenario comparison of two reports.
#[derive(Clone, PartialEq, Debug)]
pub struct ScenarioSpeedup {
    /// Scenario identifier present in both reports.
    pub name: String,
    /// Baseline (older report) cycles per second.
    pub baseline_cycles_per_second: f64,
    /// This report's cycles per second.
    pub cycles_per_second: f64,
    /// `cycles_per_second / baseline_cycles_per_second`.
    pub speedup: f64,
}

impl ThroughputReport {
    /// Serializes the report as pretty-printed JSON (the on-disk format).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if serialization fails.
    pub fn to_json(&self) -> Result<String, SimError> {
        serde_json::to_string_pretty(self)
            .map(|s| s + "\n")
            .map_err(|e| SimError::invalid_config(format!("throughput report to JSON: {e}")))
    }

    /// Parses a report from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] on malformed input.
    pub fn from_json(text: &str) -> Result<Self, SimError> {
        serde_json::from_str(text)
            .map_err(|e| SimError::invalid_config(format!("throughput report from JSON: {e}")))
    }

    /// Result of the named scenario, if present.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioResult> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// Per-scenario speedup of `self` over `baseline` (an older report), for
    /// every scenario name the two reports share.
    pub fn compare(&self, baseline: &ThroughputReport) -> Vec<ScenarioSpeedup> {
        self.scenarios
            .iter()
            .filter_map(|s| {
                let base = baseline.scenario(&s.name)?;
                if base.cycles_per_second <= 0.0 {
                    return None;
                }
                Some(ScenarioSpeedup {
                    name: s.name.clone(),
                    baseline_cycles_per_second: base.cycles_per_second,
                    cycles_per_second: s.cycles_per_second,
                    speedup: s.cycles_per_second / base.cycles_per_second,
                })
            })
            .collect()
    }

    /// Human-readable warnings about scenarios the two reports do *not*
    /// share — the expected situation right after a row is added to (or
    /// retired from) the matrix. [`ThroughputReport::compare`] silently
    /// skips such scenarios; callers (the CLI, CI) surface these warnings
    /// instead of failing, so a matrix change never breaks the first
    /// comparison against an older trajectory entry.
    pub fn scenario_set_warnings(&self, baseline: &ThroughputReport) -> Vec<String> {
        let mut warnings = Vec::new();
        let new_only: Vec<&str> = self
            .scenarios
            .iter()
            .filter(|s| baseline.scenario(&s.name).is_none())
            .map(|s| s.name.as_str())
            .collect();
        if !new_only.is_empty() {
            warnings.push(format!(
                "scenario(s) not in the baseline (skipped in the comparison): {}",
                new_only.join(", ")
            ));
        }
        let base_only: Vec<&str> = baseline
            .scenarios
            .iter()
            .filter(|s| self.scenario(&s.name).is_none())
            .map(|s| s.name.as_str())
            .collect();
        if !base_only.is_empty() {
            warnings.push(format!(
                "baseline scenario(s) not measured in this run (skipped in the comparison): {}",
                base_only.join(", ")
            ));
        }
        // Shared scenarios that do not simulate the same machine: a selector
        // retune (`bench --selector/--interval`) or a behaviour-changing
        // commit makes the wall-clock ratio meaningless for that row.
        for s in &self.scenarios {
            let Some(base) = baseline.scenario(&s.name) else {
                continue;
            };
            if s.selector != base.selector {
                warnings.push(format!(
                    "scenario `{}` used selector `{}` but the baseline used `{}`; \
                     its speedup compares different machines",
                    s.name,
                    s.selector.map_or("none", |v| v.name()),
                    base.selector.map_or("none", |v| v.name()),
                ));
            } else if s.instructions_per_thread == base.instructions_per_thread
                && s.simulated_cycles != base.simulated_cycles
            {
                warnings.push(format!(
                    "scenario `{}` simulated {} cycles but the baseline simulated {}; \
                     the commits simulate different machines, so its speedup is not a \
                     pure wall-clock comparison",
                    s.name, s.simulated_cycles, base.simulated_cycles,
                ));
            }
        }
        warnings
    }

    /// Speedup of the headline [`BASELINE_SCENARIO`] over `baseline`, when both
    /// reports contain it.
    pub fn headline_speedup(&self, baseline: &ThroughputReport) -> Option<f64> {
        self.compare(baseline)
            .into_iter()
            .find(|s| s.name == BASELINE_SCENARIO)
            .map(|s| s.speedup)
    }

    /// Aligned human-readable table of the report.
    pub fn format_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<20} {:>2} {:<14} {:>12} {:>12} {:>10} {:>14} {:>14}\n",
            "scenario", "T", "policy", "cycles", "instrs", "wall s", "cycles/s", "instrs/s"
        ));
        for s in &self.scenarios {
            out.push_str(&format!(
                "{:<20} {:>2} {:<14} {:>12} {:>12} {:>10.4} {:>14.0} {:>14.0}\n",
                s.name,
                s.threads,
                s.policy.name(),
                s.simulated_cycles,
                s.committed_instructions,
                s.wall_seconds,
                s.cycles_per_second,
                s.instructions_per_second,
            ));
        }
        out
    }
}

/// One dated entry of the on-disk throughput trajectory.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct TrajectoryEntry {
    /// ISO-8601 date (`YYYY-MM-DD`) the entry was recorded.
    pub date: String,
    /// The full report measured at that point.
    pub report: ThroughputReport,
}

/// The append-only `BENCH_throughput.json` schema: every recorded commit's
/// report, oldest first. `smt-cli bench` appends to this file instead of
/// overwriting it, so the perf history of the repository stays recoverable
/// from the working tree.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ThroughputTrajectory {
    /// Schema version of the trajectory file
    /// ([`TRAJECTORY_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Dated entries, oldest first.
    pub entries: Vec<TrajectoryEntry>,
}

impl Default for ThroughputTrajectory {
    fn default() -> Self {
        Self::new()
    }
}

impl ThroughputTrajectory {
    /// An empty trajectory.
    pub fn new() -> Self {
        ThroughputTrajectory {
            schema_version: TRAJECTORY_SCHEMA_VERSION,
            entries: Vec::new(),
        }
    }

    /// Parses a trajectory from JSON, migrating the legacy schema (a single
    /// overwritten [`ThroughputReport`]) into a one-entry trajectory dated
    /// `"unknown"`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the text is neither a
    /// trajectory nor a legacy report.
    pub fn from_json(text: &str) -> Result<Self, SimError> {
        if let Ok(trajectory) = serde_json::from_str::<ThroughputTrajectory>(text) {
            return Ok(trajectory);
        }
        let legacy = ThroughputReport::from_json(text).map_err(|e| {
            SimError::invalid_config(format!(
                "neither a throughput trajectory nor a legacy report: {e}"
            ))
        })?;
        let mut trajectory = Self::new();
        trajectory.push("unknown", legacy);
        Ok(trajectory)
    }

    /// Serializes the trajectory as pretty-printed JSON (the on-disk format).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if serialization fails.
    pub fn to_json(&self) -> Result<String, SimError> {
        serde_json::to_string_pretty(self)
            .map(|s| s + "\n")
            .map_err(|e| SimError::invalid_config(format!("throughput trajectory to JSON: {e}")))
    }

    /// Appends a dated entry.
    pub fn push(&mut self, date: impl Into<String>, report: ThroughputReport) {
        self.entries.push(TrajectoryEntry {
            date: date.into(),
            report,
        });
    }

    /// The most recent entry's report, if any — what CI regressions compare
    /// against.
    pub fn latest(&self) -> Option<&ThroughputReport> {
        self.entries.last().map(|e| &e.report)
    }
}

/// Run options of a scenario measurement: no warm-up, every simulated cycle
/// is timed and counted.
fn scenario_options(opts: &BenchOptions) -> SimOptions {
    SimOptions {
        max_instructions_per_thread: opts.instructions_per_thread,
        warmup_instructions_per_thread: 0,
        ..SimOptions::default()
    }
}

/// Builds a ready-to-run single-core simulator (and its run options) for one
/// scenario, so callers timing the hot path — [`run_scenario`], the criterion
/// bench — can exclude trace construction from the measurement.
///
/// # Errors
///
/// Returns an error for unknown benchmarks, invalid configurations, or a
/// chip scenario (`cores > 1`; those are driven through [`run_scenario`]).
pub fn prepare_scenario(
    scenario: &BenchScenario,
    opts: &BenchOptions,
) -> Result<(SmtSimulator, SimOptions), SimError> {
    if scenario.cores > 1 {
        return Err(SimError::invalid_config(
            "prepare_scenario builds single-core simulators; chip scenarios run via run_scenario",
        ));
    }
    let threads = scenario.benchmarks.len();
    let mut config = SmtConfig::baseline(threads);
    config.fetch_policy = scenario.policy;
    let scale = RunScale::standard().with_instructions(opts.instructions_per_thread);
    let options = scenario_options(opts);
    let traces = scenario
        .benchmarks
        .iter()
        .map(|b| build_trace(b, scale))
        .collect::<Result<Vec<_>, _>>()?;
    let sim = match scenario.selector {
        Some(selector) => {
            // Adaptive rows switch between the scenario policy and the
            // MLP-aware flush policy, timing the interval collector and the
            // swap machinery alongside the pipeline.
            let mut adaptive =
                AdaptiveConfig::new(selector, vec![scenario.policy, FetchPolicyKind::MlpFlush]);
            if let Some(interval) = opts.adaptive_interval {
                adaptive.interval_cycles = interval;
            }
            SmtSimulator::with_adaptive(config, traces, adaptive)?
        }
        None => SmtSimulator::new(config, traces)?,
    };
    Ok((sim, options))
}

/// Worker threads a chip scenario will step its cores on: the
/// `--chip-threads` override when given, the scenario's own setting
/// otherwise (1 = serial loop). The simulator clamps to the core count.
fn effective_chip_threads(scenario: &BenchScenario, opts: &BenchOptions) -> usize {
    opts.chip_threads.unwrap_or(scenario.chip_threads).max(1)
}

/// Builds a ready-to-run chip simulator for a `cores > 1` scenario,
/// dealing the benchmark list out over the cores core-major.
fn prepare_chip_scenario(
    scenario: &BenchScenario,
    opts: &BenchOptions,
) -> Result<(ChipSimulator, SimOptions), SimError> {
    let cores = scenario.cores;
    if !scenario.benchmarks.len().is_multiple_of(cores) {
        return Err(SimError::invalid_config(
            "chip scenario benchmarks must divide evenly over the cores",
        ));
    }
    let threads_per_core = scenario.benchmarks.len() / cores;
    let config = ChipConfig::baseline(cores, threads_per_core)
        .with_policy(scenario.policy)
        .with_chip_threads(effective_chip_threads(scenario, opts));
    let scale = RunScale::standard().with_instructions(opts.instructions_per_thread);
    let traces = scenario
        .benchmarks
        .chunks(threads_per_core)
        .map(|core| {
            core.iter()
                .map(|b| build_trace(b, scale))
                .collect::<Result<Vec<_>, _>>()
        })
        .collect::<Result<Vec<_>, _>>()?;
    let sim = ChipSimulator::new(config, traces)?;
    Ok((sim, scenario_options(opts)))
}

/// Runs one scenario: `opts.runs` timed repetitions, best wall time kept.
/// Only [`SmtSimulator::run`] is inside the timed region; trace and simulator
/// construction are not.
///
/// Repetitions must produce bit-identical [`smt_types::MachineStats`]; a
/// mismatch means the simulator lost determinism and is reported as an error.
///
/// # Errors
///
/// Returns an error for unknown benchmarks, invalid configurations, or a
/// determinism violation across repetitions.
pub fn run_scenario(
    scenario: &BenchScenario,
    opts: &BenchOptions,
) -> Result<ScenarioResult, SimError> {
    if scenario.sampled {
        return run_sampled_scenario(scenario, opts);
    }
    let threads = scenario.benchmarks.len();
    let mut best_wall = f64::INFINITY;
    let mut reference_stats: Option<MachineStats> = None;
    for _ in 0..opts.runs.max(1) {
        // The timed region contains only the simulator's `run`; trace and
        // simulator construction stay outside. Chip scenarios flatten their
        // per-core statistics into the single-core shape for reporting.
        let stats = if scenario.cores > 1 {
            let (mut sim, options) = prepare_chip_scenario(scenario, opts)?;
            let start = Instant::now(); // analyze: allow(determinism) reason="wall-clock timing of the benchmark harness itself, not simulated state"
            let chip_stats = sim.run(options);
            best_wall = best_wall.min(start.elapsed().as_secs_f64());
            crate::metrics::flatten_chip_stats(&chip_stats)
        } else {
            let (mut sim, options) = prepare_scenario(scenario, opts)?;
            let start = Instant::now(); // analyze: allow(determinism) reason="wall-clock timing of the benchmark harness itself, not simulated state"
            let stats = sim.run(options);
            best_wall = best_wall.min(start.elapsed().as_secs_f64());
            stats
        };
        match &reference_stats {
            None => reference_stats = Some(stats),
            Some(reference) => {
                if *reference != stats {
                    return Err(SimError::invalid_config(format!(
                        "scenario `{}`: repeated runs diverged (simulator lost determinism)",
                        scenario.name
                    )));
                }
            }
        }
    }
    let stats = reference_stats.expect("at least one run");
    let committed: u64 = stats.threads.iter().map(|t| t.committed_instructions).sum();
    let wall = best_wall.max(1e-9);
    Ok(ScenarioResult {
        name: scenario.name.to_string(),
        threads,
        benchmarks: scenario.benchmarks.iter().map(|b| b.to_string()).collect(),
        policy: scenario.policy,
        cores: Some(scenario.cores),
        selector: scenario.selector,
        chip_threads: (scenario.cores > 1).then(|| effective_chip_threads(scenario, opts)),
        instructions_per_thread: opts.instructions_per_thread,
        simulated_cycles: stats.cycles,
        committed_instructions: committed,
        total_ipc: stats.total_ipc(),
        wall_seconds: best_wall,
        cycles_per_second: stats.cycles as f64 / wall,
        instructions_per_second: committed as f64 / wall,
        runs: opts.runs.max(1),
        sampled_windows: None,
        detailed_fraction: None,
    })
}

/// Runs a sampled scenario: the same timed-repetition protocol as
/// [`run_scenario`], but through [`SmtSimulator::run_sampled`] at
/// [`SAMPLED_BUDGET_MULTIPLIER`] times the exact rows' per-thread budget
/// under the default [`SamplingConfig`]. `simulated_cycles` (and thus
/// cycles/sec) counts only detailed cycles — the functional fast-forward
/// phases have none — so the instructions/sec column is where the sampling
/// speedup shows against the exact row over the same workload.
fn run_sampled_scenario(
    scenario: &BenchScenario,
    opts: &BenchOptions,
) -> Result<ScenarioResult, SimError> {
    let threads = scenario.benchmarks.len();
    let sampling = SamplingConfig::default();
    let budget = opts.instructions_per_thread * SAMPLED_BUDGET_MULTIPLIER;
    let mut best_wall = f64::INFINITY;
    let mut reference: Option<(SampledRun, u64)> = None;
    for _ in 0..opts.runs.max(1) {
        let (mut sim, mut options) = prepare_scenario(scenario, opts)?;
        options.max_instructions_per_thread = budget;
        let start = Instant::now(); // analyze: allow(determinism) reason="wall-clock timing of the benchmark harness itself, not simulated state"
        let run = sim.run_sampled(options, &sampling)?;
        best_wall = best_wall.min(start.elapsed().as_secs_f64());
        let committed: u64 = sim.core().committed().sum();
        match &reference {
            None => reference = Some((run, committed)),
            Some((reference_run, reference_committed)) => {
                if *reference_run != run || *reference_committed != committed {
                    return Err(SimError::invalid_config(format!(
                        "scenario `{}`: repeated sampled runs diverged \
                         (simulator lost determinism)",
                        scenario.name
                    )));
                }
            }
        }
    }
    let (run, committed) = reference.expect("at least one run");
    let detailed_cycles: u64 = run.window_cycles.iter().sum();
    let wall = best_wall.max(1e-9);
    Ok(ScenarioResult {
        name: scenario.name.to_string(),
        threads,
        benchmarks: scenario.benchmarks.iter().map(|b| b.to_string()).collect(),
        policy: scenario.policy,
        cores: Some(scenario.cores),
        selector: scenario.selector,
        chip_threads: None,
        instructions_per_thread: budget,
        simulated_cycles: detailed_cycles,
        committed_instructions: committed,
        total_ipc: run.estimate.total_ipc.mean,
        wall_seconds: best_wall,
        cycles_per_second: detailed_cycles as f64 / wall,
        instructions_per_second: committed as f64 / wall,
        runs: opts.runs.max(1),
        sampled_windows: Some(run.estimate.windows),
        detailed_fraction: Some(run.estimate.detailed_fraction),
    })
}

/// The exact scenario list a [`run_matrix`] call with `opts` will measure:
/// the fixed matrix plus the `extra_chip_cores` row when it is not already a
/// matrix member. Callers announcing the run (the CLI) derive their counts
/// from this so the message cannot drift from what actually runs.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for an unsupported extra core count.
pub fn scenarios_for(opts: &BenchOptions) -> Result<Vec<BenchScenario>, SimError> {
    let mut matrix = scenario_matrix();
    if let Some(cores) = opts.extra_chip_cores {
        let extra = chip_scenario(cores)?;
        if !matrix.iter().any(|s| s.name == extra.name) {
            matrix.push(extra);
        }
    }
    if let Some(selector) = opts.adaptive_selector {
        let adaptive = adaptive_scenario(Some(selector));
        if let Some(row) = matrix.iter_mut().find(|s| s.name == adaptive.name) {
            *row = adaptive;
        }
    }
    Ok(matrix)
}

/// Runs the whole [`scenario_matrix`] and assembles the report.
///
/// `commit` identifies the binary under test (normally the git revision) and is
/// recorded verbatim.
///
/// # Errors
///
/// Propagates the first scenario failure.
pub fn run_matrix(
    opts: &BenchOptions,
    commit: Option<String>,
) -> Result<ThroughputReport, SimError> {
    let matrix = scenarios_for(opts)?;
    let mut scenarios = Vec::new();
    for scenario in &matrix {
        scenarios.push(run_scenario(scenario, opts)?);
    }
    Ok(ThroughputReport {
        schema_version: SCHEMA_VERSION,
        quick: opts.quick,
        instructions_per_thread: opts.instructions_per_thread,
        runs_per_scenario: opts.runs.max(1),
        commit,
        scenarios,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> BenchOptions {
        BenchOptions {
            instructions_per_thread: 300,
            runs: 2,
            quick: true,
            ..BenchOptions::quick()
        }
    }

    #[test]
    fn matrix_covers_thread_counts_and_policies() {
        let matrix = scenario_matrix();
        assert!(matrix.iter().any(|s| s.benchmarks.len() == 1));
        assert!(matrix.iter().any(|s| s.benchmarks.len() == 2));
        assert!(matrix.iter().any(|s| s.benchmarks.len() == 4));
        assert!(matrix.iter().any(|s| s.policy == FetchPolicyKind::Icount));
        assert!(matrix.iter().any(|s| s.policy == FetchPolicyKind::MlpFlush));
        assert!(matrix.iter().any(|s| s.name == BASELINE_SCENARIO));
        assert!(
            matrix.iter().any(|s| s.cores > 1),
            "matrix must contain a chip row"
        );
        assert!(
            matrix.iter().any(|s| s.sampled),
            "matrix must contain a sampled row"
        );
        let pooled = matrix
            .iter()
            .find(|s| s.chip_threads > 1)
            .expect("matrix must contain a parallel chip row");
        assert_eq!((pooled.name, pooled.cores), ("4c2t_mix_chipthreads", 4));
        let mut names: Vec<_> = matrix.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), matrix.len(), "scenario names must be unique");
    }

    #[test]
    fn scenario_runs_and_reports_positive_rates() {
        let scenario = BenchScenario {
            name: "test_2t",
            benchmarks: &["gcc", "gap"],
            policy: FetchPolicyKind::Icount,
            cores: 1,
            selector: None,
            sampled: false,
            chip_threads: 1,
        };
        let result = run_scenario(&scenario, &tiny_opts()).unwrap();
        assert!(result.simulated_cycles > 0);
        assert!(result.committed_instructions >= 300);
        assert!(result.cycles_per_second > 0.0);
        assert!(result.instructions_per_second > 0.0);
        assert!(result.total_ipc > 0.0);
        assert_eq!(result.threads, 2);
    }

    #[test]
    fn sampled_scenario_runs_at_ten_x_budget() {
        let opts = tiny_opts();
        let matrix = scenario_matrix();
        let scenario = matrix.iter().find(|s| s.sampled).expect("sampled row");
        let result = run_scenario(scenario, &opts).unwrap();
        assert_eq!(result.name, "4t_mlp_sampled");
        assert_eq!(
            result.instructions_per_thread,
            opts.instructions_per_thread * SAMPLED_BUDGET_MULTIPLIER
        );
        assert!(result.sampled_windows.expect("windows recorded") >= 3);
        let fraction = result.detailed_fraction.expect("fraction recorded");
        assert!(fraction > 0.0 && fraction < 0.3);
        assert!(result.simulated_cycles > 0);
        assert!(result.committed_instructions > result.instructions_per_thread);
        assert!(result.total_ipc > 0.0);
        assert!(result.instructions_per_second > 0.0);
    }

    #[test]
    fn chip_scenario_runs_and_reports() {
        let scenario = chip_scenario(2).unwrap();
        let result = run_scenario(&scenario, &tiny_opts()).unwrap();
        assert_eq!(result.cores, Some(2));
        assert_eq!(result.threads, 4);
        assert_eq!(result.chip_threads, Some(1));
        assert!(result.simulated_cycles > 0);
        assert!(result.cycles_per_second > 0.0);
        assert!(chip_scenario(1).is_err());
        assert!(chip_scenario(9).is_err());
    }

    /// The `--chip-threads` override reaches the simulator and the report,
    /// and the pooled row simulates the exact machine the serial row does.
    #[test]
    fn chip_threads_override_is_recorded_and_bit_for_bit() {
        let scenario = chip_scenario(2).unwrap();
        let serial = run_scenario(&scenario, &tiny_opts()).unwrap();
        let opts = BenchOptions {
            chip_threads: Some(2),
            ..tiny_opts()
        };
        let pooled = run_scenario(&scenario, &opts).unwrap();
        assert_eq!(pooled.chip_threads, Some(2));
        assert_eq!(pooled.simulated_cycles, serial.simulated_cycles);
        assert_eq!(pooled.committed_instructions, serial.committed_instructions);
        assert_eq!(pooled.total_ipc, serial.total_ipc);
    }

    #[test]
    fn trajectory_appends_and_migrates_legacy_reports() {
        let opts = BenchOptions {
            instructions_per_thread: 200,
            runs: 1,
            quick: true,
            ..BenchOptions::quick()
        };
        let report = ThroughputReport {
            schema_version: SCHEMA_VERSION,
            quick: true,
            instructions_per_thread: opts.instructions_per_thread,
            runs_per_scenario: 1,
            commit: Some("abc".to_string()),
            scenarios: vec![run_scenario(
                &BenchScenario {
                    name: BASELINE_SCENARIO,
                    benchmarks: &["gcc", "gap"],
                    policy: FetchPolicyKind::Icount,
                    cores: 1,
                    selector: None,
                    sampled: false,
                    chip_threads: 1,
                },
                &opts,
            )
            .unwrap()],
        };
        // Append-only round trip.
        let mut trajectory = ThroughputTrajectory::new();
        trajectory.push("2026-07-01", report.clone());
        trajectory.push("2026-07-30", report.clone());
        let json = trajectory.to_json().unwrap();
        let parsed = ThroughputTrajectory::from_json(&json).unwrap();
        assert_eq!(parsed, trajectory);
        assert_eq!(parsed.entries.len(), 2);
        assert_eq!(parsed.latest().unwrap(), &report);
        // A legacy single-report file migrates to a one-entry trajectory.
        let legacy_json = report.to_json().unwrap();
        let migrated = ThroughputTrajectory::from_json(&legacy_json).unwrap();
        assert_eq!(migrated.entries.len(), 1);
        assert_eq!(migrated.entries[0].date, "unknown");
        assert_eq!(migrated.latest().unwrap(), &report);
        assert!(ThroughputTrajectory::from_json("{]").is_err());
    }

    #[test]
    fn report_round_trips_through_json_and_compares() {
        let opts = BenchOptions {
            instructions_per_thread: 200,
            runs: 1,
            quick: true,
            ..BenchOptions::quick()
        };
        let mut report = ThroughputReport {
            schema_version: SCHEMA_VERSION,
            quick: true,
            instructions_per_thread: opts.instructions_per_thread,
            runs_per_scenario: 1,
            commit: Some("abc1234".to_string()),
            scenarios: vec![run_scenario(
                &BenchScenario {
                    name: BASELINE_SCENARIO,
                    benchmarks: &["gcc", "gap"],
                    policy: FetchPolicyKind::Icount,
                    cores: 1,
                    selector: None,
                    sampled: false,
                    chip_threads: 1,
                },
                &opts,
            )
            .unwrap()],
        };
        let json = report.to_json().unwrap();
        let parsed = ThroughputReport::from_json(&json).unwrap();
        assert_eq!(parsed, report);

        // A report twice as fast shows a 2x headline speedup.
        let baseline = report.clone();
        report.scenarios[0].cycles_per_second *= 2.0;
        let speedup = report.headline_speedup(&baseline).unwrap();
        assert!((speedup - 2.0).abs() < 1e-12);
        assert_eq!(report.compare(&baseline).len(), 1);
        assert!(!report.format_text().is_empty());
    }
}
