//! Multiprogram workload definitions (Tables II and III of the paper).

use smt_trace::spec;
use smt_types::SimError;

/// Workload category used to group results (Section 5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WorkloadGroup {
    /// All constituent benchmarks are ILP-intensive.
    IlpIntensive,
    /// All constituent benchmarks are MLP-intensive.
    MlpIntensive,
    /// Mix of ILP- and MLP-intensive benchmarks.
    Mixed,
}

impl WorkloadGroup {
    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadGroup::IlpIntensive => "ILP",
            WorkloadGroup::MlpIntensive => "MLP",
            WorkloadGroup::Mixed => "MIX",
        }
    }
}

/// Resolves whether one benchmark name — synthetic (Table I) or an on-disk
/// `trace:<path>` workload — is MLP-intensive.
///
/// Synthetic names answer from their [`spec`] profile; `trace:` names answer
/// from the `.smtt` header's MLP flag, which the recorder stamped from the
/// recorded workload's classification.
///
/// # Errors
///
/// Returns [`SimError::UnknownBenchmark`] for unknown synthetic names, or
/// [`SimError::InvalidConfig`] for a `trace:` file that is missing or has a
/// malformed header.
pub fn benchmark_is_mlp_intensive(name: &str) -> Result<bool, SimError> {
    if let Some(path) = smt_trace::trace_path(name) {
        return Ok(smt_trace::inspect::peek_header(path)?.mlp_intensive);
    }
    Ok(spec::benchmark(name)?.is_mlp_intensive())
}

/// One multiprogram workload: a named set of benchmarks co-scheduled on the SMT
/// processor.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Workload {
    /// Benchmarks, one per hardware thread.
    pub benchmarks: Vec<String>,
    /// Category per Tables II/III.
    pub group: WorkloadGroup,
}

impl Workload {
    /// Builds a workload, classifying it from the constituent benchmarks.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownBenchmark`] if any name is neither a Table I
    /// benchmark nor a readable `trace:<path>` workload, or
    /// [`SimError::InvalidWorkload`] if the list is empty.
    pub fn new<S: Into<String>>(benchmarks: Vec<S>) -> Result<Self, SimError> {
        let benchmarks: Vec<String> = benchmarks.into_iter().map(Into::into).collect();
        if benchmarks.is_empty() {
            return Err(SimError::invalid_workload(
                "workload needs at least one benchmark",
            ));
        }
        let mut mlp_count = 0;
        for name in &benchmarks {
            if benchmark_is_mlp_intensive(name)? {
                mlp_count += 1;
            }
        }
        let group = if mlp_count == 0 {
            WorkloadGroup::IlpIntensive
        } else if mlp_count == benchmarks.len() {
            WorkloadGroup::MlpIntensive
        } else {
            WorkloadGroup::Mixed
        };
        Ok(Workload { benchmarks, group })
    }

    /// Workload name: benchmarks joined with dashes (matches the paper's figures).
    pub fn name(&self) -> String {
        self.benchmarks.join("-")
    }

    /// Number of hardware threads this workload occupies.
    pub fn num_threads(&self) -> usize {
        self.benchmarks.len()
    }

    /// Number of MLP-intensive benchmarks in the mix.
    pub fn mlp_count(&self) -> usize {
        self.benchmarks
            .iter()
            .filter(|b| benchmark_is_mlp_intensive(b).unwrap_or(false))
            .count()
    }
}

fn mk(benchmarks: &[&'static str]) -> Workload {
    Workload::new(benchmarks.to_vec()).expect("table workloads are valid")
}

/// The 36 two-thread workloads of Table II.
pub fn two_thread_workloads() -> Vec<Workload> {
    let ilp: &[&[&str]] = &[
        &["vortex", "parser"],
        &["crafty", "twolf"],
        &["facerec", "crafty"],
        &["vpr", "sixtrack"],
        &["vortex", "gcc"],
        &["gcc", "gap"],
    ];
    let mlp: &[&[&str]] = &[
        &["apsi", "mesa"],
        &["mcf", "swim"],
        &["mcf", "galgel"],
        &["wupwise", "ammp"],
        &["swim", "galgel"],
        &["lucas", "fma3d"],
        &["mesa", "galgel"],
        &["galgel", "fma3d"],
        &["applu", "swim"],
        &["mcf", "equake"],
        &["applu", "galgel"],
        &["swim", "mesa"],
    ];
    let mixed: &[&[&str]] = &[
        &["swim", "perlbmk"],
        &["galgel", "twolf"],
        &["fma3d", "twolf"],
        &["apsi", "art"],
        &["gzip", "wupwise"],
        &["apsi", "twolf"],
        &["mgrid", "vortex"],
        &["swim", "twolf"],
        &["swim", "eon"],
        &["swim", "facerec"],
        &["parser", "wupwise"],
        &["vpr", "mcf"],
        &["equake", "perlbmk"],
        &["applu", "vortex"],
        &["art", "mgrid"],
        &["equake", "art"],
        &["parser", "ammp"],
        &["facerec", "mcf"],
    ];
    ilp.iter()
        .chain(mlp.iter())
        .chain(mixed.iter())
        .map(|b| mk(b))
        .collect()
}

/// The 30 four-thread workloads of Table III (sorted by the number of
/// MLP-intensive benchmarks in the mix, as in the paper).
pub fn four_thread_workloads() -> Vec<Workload> {
    let table: &[&[&str]] = &[
        // 0 MLP-intensive benchmarks
        &["vortex", "parser", "crafty", "twolf"],
        &["facerec", "crafty", "vpr", "sixtrack"],
        &["swim", "perlbmk", "vortex", "gcc"],
        &["galgel", "twolf", "gcc", "gap"],
        &["fma3d", "twolf", "vortex", "parser"],
        // 1
        &["apsi", "art", "crafty", "twolf"],
        &["gzip", "wupwise", "facerec", "crafty"],
        &["apsi", "twolf", "vpr", "sixtrack"],
        &["mgrid", "vortex", "swim", "twolf"],
        &["swim", "eon", "perlbmk", "mesa"],
        &["parser", "wupwise", "vpr", "mcf"],
        // 2
        &["equake", "perlbmk", "applu", "vortex"],
        &["art", "mgrid", "applu", "galgel"],
        &["parser", "ammp", "facerec", "mcf"],
        &["swim", "perlbmk", "galgel", "twolf"],
        &["fma3d", "twolf", "apsi", "art"],
        &["gzip", "wupwise", "apsi", "twolf"],
        &["equake", "art", "parser", "ammp"],
        &["apsi", "mesa", "swim", "eon"],
        &["mcf", "swim", "perlbmk", "mesa"],
        &["mcf", "galgel", "vortex", "gcc"],
        // 3
        &["wupwise", "ammp", "vpr", "mcf"],
        &["swim", "galgel", "parser", "wupwise"],
        &["lucas", "fma3d", "equake", "perlbmk"],
        &["mesa", "galgel", "applu", "vortex"],
        &["galgel", "fma3d", "art", "mgrid"],
        &["applu", "swim", "mcf", "equake"],
        // 4
        &["applu", "galgel", "swim", "mesa"],
        &["apsi", "mesa", "mcf", "swim"],
        &["mcf", "galgel", "wupwise", "ammp"],
    ];
    table.iter().map(|b| mk(b)).collect()
}

/// Two-thread workloads restricted to one group.
pub fn two_thread_group(group: WorkloadGroup) -> Vec<Workload> {
    two_thread_workloads()
        .into_iter()
        .filter(|w| w.group == group)
        .collect()
}

/// A small representative subset of two-thread workloads (one per group plus two
/// extra MLP-heavy mixes), used by the microarchitecture sweeps of Section 6.4 and
/// by quick regression runs.
pub fn representative_two_thread_workloads() -> Vec<Workload> {
    vec![
        mk(&["vortex", "gcc"]),
        mk(&["mcf", "swim"]),
        mk(&["lucas", "fma3d"]),
        mk(&["swim", "twolf"]),
        mk(&["vpr", "mcf"]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_thread_table_has_36_workloads() {
        let all = two_thread_workloads();
        assert_eq!(all.len(), 36);
        assert_eq!(
            all.iter()
                .filter(|w| w.group == WorkloadGroup::IlpIntensive)
                .count(),
            6
        );
        assert_eq!(
            all.iter()
                .filter(|w| w.group == WorkloadGroup::MlpIntensive)
                .count(),
            12
        );
        assert_eq!(
            all.iter()
                .filter(|w| w.group == WorkloadGroup::Mixed)
                .count(),
            18
        );
        for w in &all {
            assert_eq!(w.num_threads(), 2);
        }
    }

    #[test]
    fn four_thread_table_has_30_workloads() {
        let all = four_thread_workloads();
        assert_eq!(all.len(), 30);
        for w in &all {
            assert_eq!(w.num_threads(), 4);
            assert!(w.mlp_count() <= 4);
        }
        // The table spans the whole range from no MLP-intensive benchmarks to all
        // four benchmarks being MLP-intensive.
        assert!(all.iter().any(|w| w.mlp_count() == 0));
        assert!(all.iter().any(|w| w.mlp_count() == 4));
    }

    #[test]
    fn classification_follows_membership() {
        let w = Workload::new(vec!["mcf", "swim"]).unwrap();
        assert_eq!(w.group, WorkloadGroup::MlpIntensive);
        let w = Workload::new(vec!["gcc", "gap"]).unwrap();
        assert_eq!(w.group, WorkloadGroup::IlpIntensive);
        let w = Workload::new(vec!["swim", "twolf"]).unwrap();
        assert_eq!(w.group, WorkloadGroup::Mixed);
        assert_eq!(w.name(), "swim-twolf");
    }

    #[test]
    fn unknown_benchmark_rejected() {
        assert!(Workload::new(vec!["notabenchmark", "gcc"]).is_err());
        assert!(Workload::new(Vec::<String>::new()).is_err());
    }

    #[test]
    fn group_labels() {
        assert_eq!(WorkloadGroup::IlpIntensive.label(), "ILP");
        assert_eq!(WorkloadGroup::MlpIntensive.label(), "MLP");
        assert_eq!(WorkloadGroup::Mixed.label(), "MIX");
    }

    #[test]
    fn representative_subset_is_valid_and_diverse() {
        let subset = representative_two_thread_workloads();
        assert!(subset.len() >= 3);
        let groups: std::collections::HashSet<_> = subset.iter().map(|w| w.group).collect();
        assert_eq!(groups.len(), 3, "subset should cover all three groups");
    }
}
