//! The adaptive policy engine's pipeline driver: interval telemetry
//! collection and the sanctioned runtime fetch-policy swap point.
//!
//! When a [`Core`] is built adaptive (see
//! [`SmtSimulator::with_adaptive`](super::SmtSimulator::with_adaptive) and
//! [`crate::chip::ChipSimulator::new_adaptive`]), it carries an
//! `AdaptiveState`: a cumulative-counter baseline captured at the last
//! interval boundary, a reusable [`IntervalStats`] delta buffer, the policy
//! selector, and per-policy residency counters. At the end of every
//! `interval_cycles`-th cycle the core diffs its statistics against the
//! baseline, hands the interval record to the selector, and — if the
//! selector answers with a different policy — swaps in a freshly built
//! instance via [`Core::swap_policy`].
//!
//! Swap semantics: a swapped-in policy starts with *neutral* (freshly
//! constructed) internal state. It learns about outstanding long-latency
//! loads from the per-cycle [`smt_types::SmtSnapshot`] it is handed (the
//! paper's gating policies all consult
//! `outstanding_long_latency_loads` there), and late
//! `on_long_latency_resolved` callbacks for loads detected under the
//! previous policy are ignored by construction (policies drop unknown
//! sequence numbers). Everything the decision depends on is core-local, so
//! swaps are deterministic and — on a chip — invariant to the order cores
//! step within a cycle.

use smt_adapt::{build_selector, PolicySelector};
use smt_fetch::build_policy;
use smt_types::config::FetchPolicyKind;
use smt_types::{AdaptiveConfig, IntervalStats, SimError};

use super::Core;

/// Runtime state of the adaptive engine for one core.
pub(super) struct AdaptiveState {
    config: AdaptiveConfig,
    selector: Box<dyn PolicySelector>,
    /// Cumulative statistics counters captured at the last interval boundary.
    baseline: IntervalStats,
    /// Reusable delta buffer published to the selector at each boundary.
    interval: IntervalStats,
    /// Cycle the current interval started at.
    interval_start: u64,
    /// Completed intervals per policy, in first-seen order.
    residency: Vec<(FetchPolicyKind, u64)>,
    /// Number of actual policy swaps performed.
    swaps: u64,
}

impl AdaptiveState {
    fn new(config: AdaptiveConfig, num_threads: usize) -> Self {
        let selector = build_selector(&config);
        AdaptiveState {
            selector,
            baseline: IntervalStats::new(num_threads),
            interval: IntervalStats::new(num_threads),
            interval_start: 0,
            residency: Vec::with_capacity(config.candidates.len()),
            swaps: 0,
            config,
        }
    }

    fn record_residency(&mut self, policy: FetchPolicyKind) {
        match self.residency.iter_mut().find(|(p, _)| *p == policy) {
            Some((_, count)) => *count += 1,
            None => self.residency.push((policy, 1)),
        }
    }
}

impl Core {
    /// Enables the adaptive policy engine on this core. The currently
    /// installed policy is swapped to the configuration's initial policy
    /// (`candidates[0]`) if it differs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the adaptive configuration does
    /// not validate.
    pub(crate) fn set_adaptive(&mut self, adaptive: AdaptiveConfig) -> Result<(), SimError> {
        adaptive.validate()?;
        self.swap_policy(adaptive.initial_policy());
        let mut state = AdaptiveState::new(adaptive, self.threads.len());
        state.baseline.capture(&self.stats);
        state.interval_start = self.cycle;
        self.adaptive = Some(state);
        Ok(())
    }

    /// Whether the adaptive policy engine is driving this core.
    pub fn is_adaptive(&self) -> bool {
        self.adaptive.is_some()
    }

    /// The fetch policy currently installed.
    pub fn current_policy(&self) -> FetchPolicyKind {
        self.policy.kind()
    }

    /// Replaces the running fetch policy with a freshly built instance of
    /// `kind`, returning whether a swap happened.
    ///
    /// Swapping to the *currently installed* kind is a guaranteed no-op: the
    /// running instance (and all its internal state) stays untouched, so the
    /// machine's behaviour — and its [`smt_types::MachineStats`] — are
    /// bit-for-bit what they would have been without the call. Swapping to a
    /// different kind installs neutral policy state (see the module docs for
    /// why that is safe and deterministic).
    pub fn swap_policy(&mut self, kind: FetchPolicyKind) -> bool {
        if self.policy.kind() == kind {
            return false;
        }
        self.policy = build_policy(kind, &self.config);
        if let Some(adaptive) = &mut self.adaptive {
            adaptive.swaps += 1;
        }
        true
    }

    /// Fraction of completed intervals each policy was installed for, in
    /// first-active order, when the adaptive engine is enabled. Before the
    /// first interval completes, the current policy owns the full residency.
    pub fn policy_residency(&self) -> Option<Vec<(FetchPolicyKind, f64)>> {
        let adaptive = self.adaptive.as_ref()?;
        let total: u64 = adaptive.residency.iter().map(|(_, c)| c).sum();
        if total == 0 {
            // analyze: allow(hot-path-alloc) reason="end-of-run diagnostic, called once per simulation, not per cycle"
            return Some(vec![(self.policy.kind(), 1.0)]);
        }
        Some(
            adaptive
                .residency
                .iter()
                .map(|&(p, c)| (p, c as f64 / total as f64))
                .collect(), // analyze: allow(hot-path-alloc) reason="end-of-run diagnostic, called once per simulation, not per cycle"
        )
    }

    /// Number of policy swaps the adaptive engine has performed.
    pub fn policy_swaps(&self) -> Option<u64> {
        self.adaptive.as_ref().map(|a| a.swaps)
    }

    /// Re-captures the interval baselines after a statistics reset (the
    /// counters restart from zero, so the deltas must too). Residency and
    /// swap counters restart with the measured phase, matching the statistics
    /// they are reported next to; selector state stays warm like the
    /// predictors do.
    pub(super) fn reset_adaptive_baselines(&mut self) {
        if let Some(adaptive) = &mut self.adaptive {
            adaptive.baseline.capture(&self.stats);
            adaptive.interval_start = self.cycle;
            adaptive.residency.clear();
            adaptive.swaps = 0;
        }
    }

    /// End-of-cycle hook: at interval boundaries, publish the finished
    /// interval's telemetry to the selector and apply its decision. A no-op
    /// on non-adaptive cores.
    pub(super) fn adaptive_interval_tick(&mut self) {
        let Some(adaptive) = &mut self.adaptive else {
            return;
        };
        let elapsed = self.cycle - adaptive.interval_start;
        if elapsed < adaptive.config.interval_cycles {
            return;
        }
        let current = self.policy.kind();
        adaptive.record_residency(current);
        // Publish the finished interval and re-baseline for the next one.
        let mut interval = std::mem::take(&mut adaptive.interval);
        interval.assign_delta(&adaptive.baseline, &self.stats, elapsed);
        adaptive.baseline.capture(&self.stats);
        adaptive.interval_start = self.cycle;
        let next = adaptive.selector.next_policy(&interval, current);
        adaptive.interval = interval;
        if next != current {
            self.swap_policy(next);
        }
    }
}
