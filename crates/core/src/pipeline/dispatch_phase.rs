//! Dispatch phase: move front-end instructions into the shared back-end
//! buffers (ROB, LSQ, issue queues, rename registers), honouring per-thread
//! caps from explicit resource-management policies, and fire the
//! resource-stall policy callback when a shared resource is exhausted.

use smt_fetch::ResourceCaps;
use smt_types::{OpKind, SeqNum, SmtSnapshot, ThreadId};

use super::stats::SharedTotals;
use super::Core;

impl Core {
    pub(super) fn dispatch_phase(
        &mut self,
        snapshot: &mut SmtSnapshot,
        caps: Option<&[ResourceCaps]>,
    ) {
        let cycle = self.cycle;
        let cfg = &self.config;
        let mut remaining = cfg.dispatch_width;
        // Shared occupancy comes from the incrementally maintained totals; the
        // locals track this cycle's allocations and are folded back afterwards.
        let mut rob_total = self.totals.rob;
        let mut lsq_total = self.totals.lsq;
        let mut iq_int_total = self.totals.iq_int;
        let mut iq_fp_total = self.totals.iq_fp;
        let mut ren_int_total = self.totals.rename_int;
        let mut ren_fp_total = self.totals.rename_fp;
        let mut shared_blocked = false;
        let num_threads = self.threads.len();

        for offset in 0..num_threads {
            if remaining == 0 {
                break;
            }
            let ti = (self.rotate + offset) % num_threads;
            let thread_id = ThreadId::new(ti);
            loop {
                if remaining == 0 {
                    break;
                }
                let ctx = &self.threads[ti];
                if ctx.occ.frontend == 0 {
                    break;
                }
                // The dispatch cursor is the first undispatched instruction;
                // it coincides with `len - frontend` (checked in debug builds
                // each cycle) but needs no recomputation.
                let idx = ctx.window.first_undispatched_index();
                if ctx.window.frontend_ready_at(idx) > cycle {
                    break;
                }
                let op = ctx.window.op_at(idx);
                let uses_lsq = op.kind.is_mem();
                let uses_fp_iq = op.kind.is_fp();
                let has_dest = matches!(
                    op.kind,
                    OpKind::IntAlu | OpKind::IntMul | OpKind::FpOp | OpKind::FpLong | OpKind::Load
                );
                let dest_fp = op.kind.is_fp();

                // Shared-resource availability (ROB, LSQ, IQs, rename registers).
                let shared_ok = rob_total < cfg.rob_size
                    && (!uses_lsq || lsq_total < cfg.lsq_size)
                    && (uses_fp_iq && iq_fp_total < cfg.iq_fp_size
                        || !uses_fp_iq && iq_int_total < cfg.iq_int_size)
                    && (!has_dest
                        || (dest_fp && ren_fp_total < cfg.rename_fp
                            || !dest_fp && ren_int_total < cfg.rename_int));
                if !shared_ok {
                    shared_blocked = true;
                    break;
                }

                // Per-thread caps from explicit resource-management policies.
                if let Some(caps) = caps {
                    let cap = &caps[ti];
                    let occ = &ctx.occ;
                    let cap_ok = cap.rob.is_none_or(|c| occ.rob < c)
                        && (!uses_lsq || cap.lsq.is_none_or(|c| occ.lsq < c))
                        && (uses_fp_iq && cap.iq_fp.is_none_or(|c| occ.iq_fp < c)
                            || !uses_fp_iq && cap.iq_int.is_none_or(|c| occ.iq_int < c))
                        && (!has_dest
                            || (dest_fp && cap.rename_fp.is_none_or(|c| occ.rename_fp < c)
                                || !dest_fp && cap.rename_int.is_none_or(|c| occ.rename_int < c)));
                    if !cap_ok {
                        break;
                    }
                }

                // Resolve source-operand producers once; issue then checks
                // readiness by window offset instead of re-searching each cycle.
                let dep_offsets = ctx.window.resolve_dep_offsets(idx);

                // Allocate and mark dispatched.
                let ctx = &mut self.threads[ti];
                let seq = ctx.window.seq_at(idx);
                let pc = op.pc;
                ctx.window.set_src_dep_offsets(idx, dep_offsets);
                ctx.window.mark_dispatched(idx);
                {
                    let flags = ctx.window.flags_mut(idx);
                    flags.set_uses_lsq(uses_lsq);
                    flags.set_uses_fp_iq(uses_fp_iq);
                    flags.set_has_dest(has_dest);
                    flags.set_dest_fp(dest_fp);
                }
                ctx.occ.frontend -= 1;
                ctx.occ.rob += 1;
                rob_total += 1;
                if uses_lsq {
                    ctx.occ.lsq += 1;
                    lsq_total += 1;
                }
                if uses_fp_iq {
                    ctx.occ.iq_fp += 1;
                    iq_fp_total += 1;
                } else {
                    ctx.occ.iq_int += 1;
                    iq_int_total += 1;
                }
                if has_dest {
                    if dest_fp {
                        ctx.occ.rename_fp += 1;
                        ren_fp_total += 1;
                    } else {
                        ctx.occ.rename_int += 1;
                        ren_int_total += 1;
                    }
                }
                remaining -= 1;

                // Front-end long-latency / MLP prediction for loads.
                if op.kind == OpKind::Load {
                    let (lll, distance, has_mlp) = ctx.predict_load(pc);
                    let flags = ctx.window.flags_mut(idx);
                    flags.set_predicted_lll(lll);
                    flags.set_predicted_has_mlp(has_mlp);
                    ctx.window.set_predicted_mlp_distance(idx, distance);
                    self.policy.on_load_predicted(
                        thread_id,
                        pc,
                        SeqNum(seq),
                        lll,
                        distance,
                        has_mlp,
                    );
                }
            }
        }

        // Fold this cycle's allocations back into the running totals before any
        // stall-triggered flush (whose squashes decrement them again).
        self.totals = SharedTotals {
            rob: rob_total,
            lsq: lsq_total,
            iq_int: iq_int_total,
            iq_fp: iq_fp_total,
            rename_int: ren_int_total,
            rename_fp: ren_fp_total,
        };

        if shared_blocked {
            // Flip the stall flag and refresh the outstanding-load view in
            // place (saving the overwritten start-of-cycle values) instead of
            // cloning the snapshot for the policy callback.
            snapshot.resource_stalled = true;
            let mut stall_view = std::mem::take(&mut self.stall_view);
            stall_view.clear();
            for (i, ctx) in self.threads.iter().enumerate() {
                let t = &mut snapshot.threads[i];
                stall_view.push((t.outstanding_long_latency_loads, t.oldest_lll_cycle));
                t.outstanding_long_latency_loads = ctx.outstanding_lll.len() as u32;
                t.oldest_lll_cycle = ctx.oldest_lll_cycle();
            }
            let mut flushes = std::mem::take(&mut self.flushes);
            flushes.clear();
            self.policy.on_resource_stall(snapshot, &mut flushes);
            for req in flushes.drain(..) {
                self.apply_flush(req);
            }
            self.flushes = flushes;
            // Restore the start-of-cycle view: the fetch phase must see the
            // same snapshot the pre-refactor pipeline handed it.
            snapshot.resource_stalled = false;
            for (i, (lll, oldest)) in stall_view.drain(..).enumerate() {
                snapshot.threads[i].outstanding_long_latency_loads = lll;
                snapshot.threads[i].oldest_lll_cycle = oldest;
            }
            self.stall_view = stall_view;
        }
    }
}
