//! SMARTS-style sampled execution: interleave cheap functional fast-forward
//! phases with cycle-accurate measurement windows and extrapolate whole-run
//! metrics with per-metric confidence intervals from the between-window
//! variance.
//!
//! One sampling unit is `skip → ff → warm → measure → drain`:
//!
//! 1. **skip** `skip_instructions` per thread at raw trace speed (warm state
//!    frozen, nothing updated — the cheap phase that makes large budgets
//!    tractable; zero for full SMARTS-style functional warming);
//! 2. **fast-forward** `ff_instructions` per thread functionally (trace
//!    consumed, warm state hot, no cycles — the `fast_forward` pipeline
//!    module);
//! 3. **warm** `warm_instructions` per thread in detailed mode to re-fill the
//!    short-lived pipeline state (window occupancy, in-flight misses) the
//!    functional path does not model; statistics reset at the end;
//! 4. **measure** a detailed window until any thread commits
//!    `measure_instructions` (the paper's stop criterion at window scale),
//!    recording the window's cycle count and per-thread committed
//!    instructions;
//! 5. **drain** with fetch frozen until the pipeline is empty, so the next
//!    fast-forward starts from a sound boundary.

use smt_types::{MetricEstimate, SampledEstimate, SamplingConfig, SimError};

use super::{SimOptions, SmtSimulator};

/// Safety multiplier bounding the cycles one detailed phase may take per
/// instruction: generous enough for the most memory-bound workload (CPI well
/// under 1000) while still guaranteeing termination.
const MAX_CYCLES_PER_INSTRUCTION: u64 = 1_000;

/// Hard bound on the cycles a drain may take: the slowest in-flight miss
/// resolves in well under this.
const MAX_DRAIN_CYCLES: u64 = 1_000_000;

/// The result of a sampled run: the extrapolated estimate plus the raw
/// per-window counts, from which callers derive ratio estimates of compound
/// metrics (STP, ANTT) without re-introducing per-window ratio bias.
#[derive(Clone, PartialEq, Debug)]
pub struct SampledRun {
    /// Extrapolated IPC estimates with confidence intervals.
    pub estimate: SampledEstimate,
    /// Detailed cycles spent in each measurement window.
    pub window_cycles: Vec<u64>,
    /// Instructions committed per thread in each measurement window (outer
    /// index: window; inner index: thread).
    pub window_thread_committed: Vec<Vec<u64>>,
}

impl SmtSimulator {
    /// Freezes or unfreezes the fetch stage (used by the sampled loop's drain;
    /// exposed for tests).
    pub fn freeze_fetch(&mut self, frozen: bool) {
        self.core.fetch_frozen = frozen;
    }

    /// Runs with fetch frozen until the pipeline holds no in-flight work (all
    /// windows empty, completion queue empty, write buffer drained), then
    /// unfreezes fetch. Returns whether the pipeline fully drained within the
    /// safety cycle bound.
    pub fn drain_pipeline(&mut self) -> bool {
        self.freeze_fetch(true);
        let limit = self.core.cycle() + MAX_DRAIN_CYCLES;
        while !self.core.is_drained() && self.core.cycle() < limit {
            self.step();
        }
        self.freeze_fetch(false);
        self.core.is_drained()
    }

    /// Runs the workload in sampled mode and returns extrapolated IPC
    /// estimates with 95% confidence intervals.
    ///
    /// `options.max_instructions_per_thread` is the total per-thread
    /// instruction budget (as in [`SmtSimulator::run`]); the number of
    /// sampling units is the budget divided by
    /// [`SamplingConfig::unit_instructions`], floored at
    /// `sampling.min_windows`. `options.warmup_instructions_per_thread` is
    /// ignored — the fast-forward phases replace the monolithic warm-up.
    /// `options.max_cycles` caps total detailed cycles as usual.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `sampling` does not validate.
    pub fn run_sampled(
        &mut self,
        options: SimOptions,
        sampling: &SamplingConfig,
    ) -> Result<SampledRun, SimError> {
        sampling.validate()?;
        let num_threads = self.config().num_threads;
        let unit = sampling.unit_instructions();
        let units = options
            .max_instructions_per_thread
            .div_ceil(unit)
            .max(u64::from(sampling.min_windows));

        // analyze: allow(hot-path-alloc) reason="window accumulators, once per run"
        let mut window_cycles: Vec<u64> = Vec::new();
        // analyze: allow(hot-path-alloc) reason="window accumulators, once per run"
        let mut window_thread_committed: Vec<Vec<u64>> = Vec::new();

        for _ in 0..units {
            if self.core.cycle() >= options.max_cycles {
                break;
            }
            if sampling.skip_instructions > 0 {
                self.skip_forward(sampling.skip_instructions);
            }
            self.fast_forward(sampling.ff_instructions);

            // Detailed warm-up: re-fills the transient pipeline state the
            // functional path does not model; resets statistics at the end.
            let warm_cap = options.max_cycles.min(
                self.core.cycle()
                    + sampling.warm_instructions * MAX_CYCLES_PER_INSTRUCTION
                    + MAX_DRAIN_CYCLES,
            );
            self.warm_up(sampling.warm_instructions, warm_cap);
            self.reset_stats();

            // Measurement window: the paper's any-thread stop criterion at
            // window scale.
            // analyze: allow(hot-path-alloc) reason="once per measurement window, not per cycle"
            let baselines: Vec<u64> = self.core.committed().collect();
            let measure_cap = options.max_cycles.min(
                self.core.cycle()
                    + sampling.measure_instructions * MAX_CYCLES_PER_INSTRUCTION
                    + MAX_DRAIN_CYCLES,
            );
            while self.core.cycle() < measure_cap {
                if self
                    .core
                    .committed()
                    .zip(&baselines)
                    .any(|(committed, &base)| committed - base >= sampling.measure_instructions)
                {
                    break;
                }
                self.step();
            }
            let cycles = self.measured_cycles();
            if cycles > 0 {
                let stats = self.stats();
                window_cycles.push(cycles);
                window_thread_committed.push(
                    stats
                        .threads
                        .iter()
                        .map(|t| t.committed_instructions)
                        // analyze: allow(hot-path-alloc) reason="once per measurement window, not per cycle"
                        .collect(),
                );
            }

            // Drain so the next fast-forward starts from a sound boundary.
            self.drain_pipeline();
        }

        // Ratio estimates (Σ committed / Σ cycles): equal weight per cycle,
        // matching what an exact run measures. Averaging per-window IPCs
        // instead would over-weight lucky fast windows (see
        // [`MetricEstimate::from_ratio`]).
        let per_thread_ipc = (0..num_threads)
            .map(|ti| {
                let pairs: Vec<(f64, f64)> = window_thread_committed
                    .iter()
                    .zip(&window_cycles)
                    .map(|(w, &c)| (w[ti] as f64, c as f64))
                    // analyze: allow(hot-path-alloc) reason="once per thread at estimate assembly, not per cycle"
                    .collect();
                MetricEstimate::from_ratio(&pairs)
            })
            // analyze: allow(hot-path-alloc) reason="once per run at estimate assembly, not per cycle"
            .collect();
        let total_pairs: Vec<(f64, f64)> = window_thread_committed
            .iter()
            .zip(&window_cycles)
            .map(|(w, &c)| (w.iter().sum::<u64>() as f64, c as f64))
            // analyze: allow(hot-path-alloc) reason="once per run at estimate assembly, not per cycle"
            .collect();
        let estimate = SampledEstimate {
            windows: window_cycles.len() as u32,
            total_ipc: MetricEstimate::from_ratio(&total_pairs),
            per_thread_ipc,
            detailed_fraction: sampling.detailed_fraction(),
        };
        Ok(SampledRun {
            estimate,
            window_cycles,
            window_thread_committed,
        })
    }
}
