//! The cycle-level SMT out-of-order pipeline (the SMTSIM substitute).
//!
//! The simulator is trace driven: each hardware thread pulls [`smt_types::TraceOp`]
//! records from a [`smt_trace::TraceSource`] and moves them through a
//! fetch → (14-stage front end) → dispatch → issue → execute → commit pipeline with
//! the shared resources of Table IV (256-entry ROB, 128-entry LSQ, 64-entry issue
//! queues, 100+100 rename registers, 4-wide everywhere). The fetch stage is driven
//! by an [`smt_fetch::FetchPolicy`]; loads access the [`smt_mem::MemoryHierarchy`];
//! long-latency loads feed the LLSR/MLP predictors of [`smt_predictors`].
//!
//! Per-thread in-flight instructions live in a struct-of-arrays ring buffer
//! ([`window::OpWindow`]) so each pipeline phase streams only the columns it
//! reads; the trace front end is refilled in batches so the `Box<dyn
//! TraceSource>` virtual call is paid once per ~64 fetched instructions.
//!
//! The pipeline is organised one phase per module, in commit-to-fetch order
//! exactly as the per-cycle step runs them:
//!
//! * [`commit_phase`](self) — in-order retirement and LLSR/MLP training,
//! * [`writeback_phase`](self) — event-driven completion (min-heap),
//! * [`issue_phase`](self) — ready-instruction selection and memory access,
//! * [`dispatch_phase`](self) — shared-buffer allocation and resource stalls,
//! * [`fetch_phase`](self) — policy-prioritized instruction fetch,
//! * `squash` — branch/flush recovery, `stats` — per-cycle accounting,
//! * [`adaptive`] — the interval-telemetry collector and runtime
//!   fetch-policy switching ([`Core::swap_policy`]).

pub mod adaptive;
pub mod checkpoint;
mod commit_phase;
mod dispatch_phase;
mod fast_forward;
mod fetch_phase;
mod issue_phase;
pub mod sampling;
mod squash;
mod stats;
mod thread;
pub mod window;
mod writeback_phase;

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use smt_fetch::{build_policy, FetchPolicy, FlushRequest, ResourceCaps};
use smt_mem::{CoreMemory, SharedLevel, SharedLlc, WriteBuffer};
use smt_trace::TraceSource;
use smt_types::{AdaptiveConfig, MachineStats, SimError, SmtConfig, SmtSnapshot, ThreadId};

use adaptive::AdaptiveState;
use stats::SharedTotals;
use thread::ThreadContext;
use writeback_phase::CompletionEvent;

/// Run-length options for a simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimOptions {
    /// Stop once any thread has committed this many instructions (the paper stops
    /// at 200 M; the default here is sized for laptop-scale runs).
    pub max_instructions_per_thread: u64,
    /// Instructions each thread commits before measurement starts. The warm-up
    /// phase fills caches, TLBs and predictors (the paper's SimPoints serve the
    /// same purpose) and is excluded from all reported statistics.
    pub warmup_instructions_per_thread: u64,
    /// Hard safety limit on simulated cycles.
    pub max_cycles: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_instructions_per_thread: 50_000,
            warmup_instructions_per_thread: 5_000,
            max_cycles: 50_000_000,
        }
    }
}

impl SimOptions {
    /// Options that stop after `instructions` committed instructions on any thread,
    /// after a proportional warm-up.
    pub fn with_instructions(instructions: u64) -> Self {
        SimOptions {
            max_instructions_per_thread: instructions,
            warmup_instructions_per_thread: (instructions / 4).clamp(500, 20_000),
            ..Self::default()
        }
    }

    /// Options with an explicit warm-up length.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup_instructions_per_thread = warmup;
        self
    }
}

/// One SMT core: the full out-of-order pipeline plus the core-private memory
/// levels, stepping against a [`SharedLlc`] borrowed from its owner.
///
/// The single-core machine ([`SmtSimulator`]) owns one `Core` and one shared
/// level; a chip ([`crate::chip::ChipSimulator`]) owns N cores stepping in
/// lockstep against one shared level. The core never touches anything outside
/// its own state and the borrowed shared level, which is what makes chip
/// results independent of anything but the per-cycle shared-level discipline.
pub struct Core {
    config: SmtConfig,
    policy: Box<dyn FetchPolicy>,
    mem: CoreMemory,
    write_buffer: WriteBuffer,
    threads: Vec<ThreadContext>,
    stats: MachineStats,
    cycle: u64,
    stats_cycle_base: u64,
    rotate: usize,
    frontend_capacity: u32,
    /// Shared-resource occupancy totals, updated at every allocate/release.
    totals: SharedTotals,
    /// Pending execution completions, ordered by completion cycle.
    completions: BinaryHeap<Reverse<CompletionEvent>>,
    /// The adaptive policy engine, when enabled: interval telemetry collector
    /// plus the selector that picks the next interval's fetch policy.
    adaptive: Option<AdaptiveState>,
    /// When set, the fetch phase pulls nothing: the sampled loop freezes
    /// fetch to drain in-flight work before a fast-forward phase.
    fetch_frozen: bool,
    // Reusable per-cycle buffers: the steady-state cycle loop performs no heap
    // allocation.
    snapshot: SmtSnapshot,
    priority: Vec<ThreadId>,
    flushes: Vec<FlushRequest>,
    caps: Vec<ResourceCaps>,
    /// Ready-to-issue candidate indices of the thread currently being scanned
    /// by the issue phase (reused scratch).
    issue_candidates: Vec<u32>,
    /// Per-thread oldest mispredicted-branch seq completing this cycle.
    mispredicts: Vec<Option<u64>>,
    /// Saved start-of-cycle snapshot fields overwritten for the resource-stall
    /// policy callback, restored before fetch.
    stall_view: Vec<(u32, Option<u64>)>,
}

impl Core {
    /// Builds core `core_id` for `config`, running one trace source per
    /// hardware thread under an explicitly provided fetch policy. The core id
    /// determines the chip-wide requester ids of the core's threads (and with
    /// them the core's disjoint physical address range).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration does not validate
    /// and [`SimError::InvalidWorkload`] if the number of traces does not match
    /// `config.num_threads`.
    pub(crate) fn with_policy(
        config: SmtConfig,
        traces: Vec<Box<dyn TraceSource>>,
        policy: Box<dyn FetchPolicy>,
        core_id: usize,
    ) -> Result<Self, SimError> {
        config.validate()?;
        if traces.len() != config.num_threads {
            return Err(SimError::invalid_workload(format!(
                "expected {} trace sources, got {}",
                config.num_threads,
                traces.len()
            )));
        }
        let mem = CoreMemory::new(&config, core_id);
        // Stores retire from the write buffer at L1 store-port speed; the buffer
        // exists to absorb commit bursts (Section 5), not to throttle throughput.
        let write_buffer = WriteBuffer::new(
            config.write_buffer_entries as usize,
            config.l1d.latency.max(1),
        );
        let threads = traces
            .into_iter()
            .map(|t| ThreadContext::new(&config, t))
            .collect();
        let frontend_capacity = config.frontend_depth * config.fetch_width;
        let num_threads = config.num_threads;
        Ok(Core {
            stats: MachineStats::new(num_threads),
            snapshot: SmtSnapshot::new(num_threads),
            config,
            policy,
            mem,
            write_buffer,
            threads,
            cycle: 0,
            stats_cycle_base: 0,
            rotate: 0,
            frontend_capacity,
            totals: SharedTotals::default(),
            completions: BinaryHeap::new(),
            adaptive: None,
            fetch_frozen: false,
            priority: Vec::with_capacity(num_threads),
            flushes: Vec::new(),
            caps: vec![ResourceCaps::default(); num_threads],
            issue_candidates: Vec::with_capacity(64),
            mispredicts: vec![None; num_threads],
            stall_view: Vec::with_capacity(num_threads),
        })
    }

    /// The configuration the core was built with.
    pub fn config(&self) -> &SmtConfig {
        &self.config
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics accumulated so far.
    ///
    /// `stats().cycles` is finalized by the owning simulator's `run`; while
    /// stepping manually, read the live count from [`Core::measured_cycles`]
    /// instead.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Cycles elapsed in the current measurement phase, i.e. since the last
    /// statistics reset (warm-up end).
    pub fn measured_cycles(&self) -> u64 {
        self.cycle - self.stats_cycle_base
    }

    /// Committed instruction count of every hardware thread, in thread order.
    pub(crate) fn committed(&self) -> impl Iterator<Item = u64> + '_ {
        self.threads.iter().map(|t| t.committed)
    }

    /// Zeroes all statistics counters without disturbing microarchitectural state.
    pub(crate) fn reset_stats(&mut self) {
        self.stats = MachineStats::new(self.threads.len());
        self.stats_cycle_base = self.cycle;
        self.reset_adaptive_baselines();
    }

    /// Writes the measured cycle count into the statistics record (the owning
    /// simulator's `run` is the single writer of the aggregate count).
    pub(crate) fn finalize_cycles(&mut self) {
        self.stats.cycles = self.measured_cycles();
    }

    /// Advances the core by one cycle against the given shared level.
    pub(crate) fn step_against<S: SharedLevel>(&mut self, shared: &mut S) {
        // Move the reusable buffers out of `self` for the duration of the cycle
        // (a pointer-sized swap, not an allocation) so the phases can borrow
        // them alongside `&mut self`.
        let mut snapshot = std::mem::take(&mut self.snapshot);
        self.refresh_snapshot(&mut snapshot);
        let mut caps = std::mem::take(&mut self.caps);
        caps.fill(ResourceCaps::default());
        let caps_apply = self
            .policy
            .resource_caps(&snapshot, &self.config, &mut caps);
        self.commit_phase(shared);
        self.writeback_phase();
        self.issue_phase(shared);
        self.dispatch_phase(&mut snapshot, caps_apply.then_some(caps.as_slice()));
        self.fetch_phase(&snapshot);
        self.account_mlp();
        self.cycle += 1;
        self.rotate = (self.rotate + 1) % self.threads.len();
        self.snapshot = snapshot;
        self.caps = caps;
        // The sanctioned policy-swap point: interval telemetry is published
        // and the selector consulted only here, at end-of-cycle, after every
        // phase has run — a pure function of core-local state, so chip
        // results stay invariant to core stepping order.
        self.adaptive_interval_tick();
        #[cfg(debug_assertions)]
        self.debug_check_totals();
    }
}

/// The single-core SMT processor simulator: one [`Core`] plus an exclusively
/// owned shared level. This is the machine of the paper; behaviour is
/// bit-for-bit identical to the pre-chip-refactor simulator.
///
/// # Example
///
/// ```
/// use smt_core::pipeline::{SimOptions, SmtSimulator};
/// use smt_trace::{spec, SyntheticTraceGenerator};
/// use smt_types::SmtConfig;
///
/// # fn main() -> Result<(), smt_types::SimError> {
/// let cfg = SmtConfig::baseline(2);
/// let t0 = SyntheticTraceGenerator::new(spec::benchmark("mcf")?, 1);
/// let t1 = SyntheticTraceGenerator::new(spec::benchmark("gcc")?, 2);
/// let mut sim = SmtSimulator::new(cfg, vec![Box::new(t0), Box::new(t1)])?;
/// let stats = sim.run(SimOptions::with_instructions(2_000));
/// assert!(stats.cycles > 0);
/// assert!(stats.threads[0].committed_instructions >= 2_000
///     || stats.threads[1].committed_instructions >= 2_000);
/// # Ok(())
/// # }
/// ```
pub struct SmtSimulator {
    core: Core,
    shared: SharedLlc,
}

impl SmtSimulator {
    /// Builds a simulator for `config` running one trace source per hardware
    /// thread, using the fetch policy named in the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration does not validate
    /// and [`SimError::InvalidWorkload`] if the number of traces does not match
    /// `config.num_threads`.
    pub fn new(config: SmtConfig, traces: Vec<Box<dyn TraceSource>>) -> Result<Self, SimError> {
        let policy = build_policy(config.fetch_policy, &config);
        Self::with_policy(config, traces, policy)
    }

    /// Builds a simulator with an explicitly provided fetch policy (used to test
    /// custom policies against the built-in ones).
    ///
    /// # Errors
    ///
    /// Same as [`SmtSimulator::new`].
    pub fn with_policy(
        config: SmtConfig,
        traces: Vec<Box<dyn TraceSource>>,
        policy: Box<dyn FetchPolicy>,
    ) -> Result<Self, SimError> {
        config.validate()?;
        let shared = SharedLlc::single_core(&config);
        let core = Core::with_policy(config, traces, policy, 0)?;
        Ok(SmtSimulator { core, shared })
    }

    /// Builds a simulator driven by the adaptive policy engine: the machine
    /// starts on `adaptive.candidates[0]` (overriding `config.fetch_policy`)
    /// and re-evaluates the selector at every interval boundary.
    ///
    /// # Errors
    ///
    /// Same as [`SmtSimulator::new`], plus [`SimError::InvalidConfig`] for an
    /// invalid adaptive configuration.
    pub fn with_adaptive(
        config: SmtConfig,
        traces: Vec<Box<dyn TraceSource>>,
        adaptive: AdaptiveConfig,
    ) -> Result<Self, SimError> {
        adaptive.validate()?;
        let policy = build_policy(adaptive.initial_policy(), &config);
        let mut sim = Self::with_policy(config, traces, policy)?;
        sim.core.set_adaptive(adaptive)?;
        Ok(sim)
    }

    /// The configuration the simulator was built with.
    pub fn config(&self) -> &SmtConfig {
        self.core.config()
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.core.cycle()
    }

    /// Statistics accumulated so far.
    ///
    /// `stats().cycles` is finalized by [`SmtSimulator::run`]; while stepping
    /// the simulator manually, read the live count from
    /// [`SmtSimulator::measured_cycles`] instead.
    pub fn stats(&self) -> &MachineStats {
        self.core.stats()
    }

    /// Cycles elapsed in the current measurement phase, i.e. since the last
    /// statistics reset (warm-up end).
    pub fn measured_cycles(&self) -> u64 {
        self.core.measured_cycles()
    }

    /// Direct access to the simulator's core (policy swapping, adaptive
    /// residency).
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// Replaces the running fetch policy with a freshly built `kind` policy
    /// (see [`Core::swap_policy`]). Returns whether a swap happened.
    pub fn swap_policy(&mut self, kind: smt_types::config::FetchPolicyKind) -> bool {
        self.core.swap_policy(kind) // analyze: allow(swap-point) reason="public passthrough for tests and tooling; the cycle loop swaps only via adaptive_interval_tick"
    }

    /// Runs the warm-up phase followed by the measured phase, stopping the
    /// measured phase once any thread has committed the instruction budget (the
    /// paper's stop criterion) or the cycle limit is hit, and returns the
    /// statistics of the measured phase.
    pub fn run(&mut self, options: SimOptions) -> MachineStats {
        self.warm_up(options.warmup_instructions_per_thread, options.max_cycles);
        // analyze: allow(hot-path-alloc) reason="once per run at measured-phase entry, not per cycle"
        let baselines: Vec<u64> = self.core.committed().collect();
        while self.core.cycle() < options.max_cycles {
            if self
                .core
                .committed()
                .zip(&baselines)
                .any(|(committed, &base)| committed - base >= options.max_instructions_per_thread)
            {
                break;
            }
            self.step();
        }
        // `run` is the single writer of the aggregate cycle count; `step` only
        // advances the raw cycle counter.
        self.core.finalize_cycles();
        self.core.stats().clone() // analyze: allow(hot-path-alloc) reason="once per run when returning final statistics"
    }

    /// Runs until every thread has committed `instructions` further instructions,
    /// then clears all statistics (microarchitectural state — caches, TLBs,
    /// predictors, stream buffers — stays warm). A zero-length warm-up is a no-op.
    pub fn warm_up(&mut self, instructions: u64, max_cycles: u64) {
        if instructions == 0 {
            return;
        }
        // analyze: allow(hot-path-alloc) reason="once per warm-up phase, not per cycle"
        let targets: Vec<u64> = self.core.committed().map(|c| c + instructions).collect();
        while self.core.cycle() < max_cycles
            && self
                .core
                .committed()
                .zip(&targets)
                .any(|(committed, &target)| committed < target)
        {
            self.step();
        }
        self.reset_stats();
    }

    /// Zeroes all statistics counters without disturbing microarchitectural state.
    pub fn reset_stats(&mut self) {
        self.core.reset_stats();
    }

    /// Advances the machine by one cycle.
    pub fn step(&mut self) {
        self.core.step_against(&mut self.shared);
    }
}
