//! The cycle-level SMT out-of-order pipeline (the SMTSIM substitute).
//!
//! The simulator is trace driven: each hardware thread pulls [`smt_types::TraceOp`]
//! records from a [`smt_trace::TraceSource`] and moves them through a
//! fetch → (14-stage front end) → dispatch → issue → execute → commit pipeline with
//! the shared resources of Table IV (256-entry ROB, 128-entry LSQ, 64-entry issue
//! queues, 100+100 rename registers, 4-wide everywhere). The fetch stage is driven
//! by an [`smt_fetch::FetchPolicy`]; loads access the [`smt_mem::MemoryHierarchy`];
//! long-latency loads feed the LLSR/MLP predictors of [`smt_predictors`].
//!
//! Per-thread in-flight instructions live in a struct-of-arrays ring buffer
//! ([`window::OpWindow`]) so each pipeline phase streams only the columns it
//! reads; the trace front end is refilled in batches so the `Box<dyn
//! TraceSource>` virtual call is paid once per ~64 fetched instructions.

mod thread;
pub mod window;

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use smt_fetch::{build_policy, FetchPolicy, FlushRequest, ResourceCaps};
use smt_mem::{AccessLevel, CoreMemory, SharedLlc, WriteBuffer};
use smt_predictors::LongLatencyPredictor;
use smt_trace::TraceSource;
use smt_types::{
    MachineStats, OpFlags, OpKind, SeqNum, SimError, SmtConfig, SmtSnapshot, ThreadId,
};

use thread::{PendingMlpEval, RefetchEntry, ThreadContext};

/// A scheduled execution-completion: instruction `seq` of `thread` finishes at
/// `done_at`. Events are popped from a min-heap when their cycle arrives;
/// events whose instruction was squashed in the meantime no longer match any
/// window entry (squashed instructions are re-fetched under fresh sequence
/// numbers) and are discarded on pop.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct CompletionEvent {
    done_at: u64,
    thread: u32,
    seq: u64,
}

/// Machine-level occupancy of the shared buffer resources, maintained
/// incrementally at every allocate/release instead of being recomputed from the
/// per-thread counters each cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
struct SharedTotals {
    rob: u32,
    lsq: u32,
    iq_int: u32,
    iq_fp: u32,
    rename_int: u32,
    rename_fp: u32,
}

/// Run-length options for a simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimOptions {
    /// Stop once any thread has committed this many instructions (the paper stops
    /// at 200 M; the default here is sized for laptop-scale runs).
    pub max_instructions_per_thread: u64,
    /// Instructions each thread commits before measurement starts. The warm-up
    /// phase fills caches, TLBs and predictors (the paper's SimPoints serve the
    /// same purpose) and is excluded from all reported statistics.
    pub warmup_instructions_per_thread: u64,
    /// Hard safety limit on simulated cycles.
    pub max_cycles: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_instructions_per_thread: 50_000,
            warmup_instructions_per_thread: 5_000,
            max_cycles: 50_000_000,
        }
    }
}

impl SimOptions {
    /// Options that stop after `instructions` committed instructions on any thread,
    /// after a proportional warm-up.
    pub fn with_instructions(instructions: u64) -> Self {
        SimOptions {
            max_instructions_per_thread: instructions,
            warmup_instructions_per_thread: (instructions / 4).clamp(500, 20_000),
            ..Self::default()
        }
    }

    /// Options with an explicit warm-up length.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup_instructions_per_thread = warmup;
        self
    }
}

/// One SMT core: the full out-of-order pipeline plus the core-private memory
/// levels, stepping against a [`SharedLlc`] borrowed from its owner.
///
/// The single-core machine ([`SmtSimulator`]) owns one `Core` and one shared
/// level; a chip ([`crate::chip::ChipSimulator`]) owns N cores stepping in
/// lockstep against one shared level. The core never touches anything outside
/// its own state and the borrowed shared level, which is what makes chip
/// results independent of anything but the per-cycle shared-level discipline.
pub struct Core {
    config: SmtConfig,
    policy: Box<dyn FetchPolicy>,
    mem: CoreMemory,
    write_buffer: WriteBuffer,
    threads: Vec<ThreadContext>,
    stats: MachineStats,
    cycle: u64,
    stats_cycle_base: u64,
    rotate: usize,
    frontend_capacity: u32,
    /// Shared-resource occupancy totals, updated at every allocate/release.
    totals: SharedTotals,
    /// Pending execution completions, ordered by completion cycle.
    completions: BinaryHeap<Reverse<CompletionEvent>>,
    // Reusable per-cycle buffers: the steady-state cycle loop performs no heap
    // allocation.
    snapshot: SmtSnapshot,
    priority: Vec<ThreadId>,
    flushes: Vec<FlushRequest>,
    caps: Vec<ResourceCaps>,
    /// Ready-to-issue candidate indices of the thread currently being scanned
    /// by the issue phase (reused scratch).
    issue_candidates: Vec<u32>,
    /// Per-thread oldest mispredicted-branch seq completing this cycle.
    mispredicts: Vec<Option<u64>>,
    /// Saved start-of-cycle snapshot fields overwritten for the resource-stall
    /// policy callback, restored before fetch.
    stall_view: Vec<(u32, Option<u64>)>,
}

impl Core {
    /// Builds core `core_id` for `config`, running one trace source per
    /// hardware thread under an explicitly provided fetch policy. The core id
    /// determines the chip-wide requester ids of the core's threads (and with
    /// them the core's disjoint physical address range).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration does not validate
    /// and [`SimError::InvalidWorkload`] if the number of traces does not match
    /// `config.num_threads`.
    pub(crate) fn with_policy(
        config: SmtConfig,
        traces: Vec<Box<dyn TraceSource>>,
        policy: Box<dyn FetchPolicy>,
        core_id: usize,
    ) -> Result<Self, SimError> {
        config.validate()?;
        if traces.len() != config.num_threads {
            return Err(SimError::invalid_workload(format!(
                "expected {} trace sources, got {}",
                config.num_threads,
                traces.len()
            )));
        }
        let mem = CoreMemory::new(&config, core_id);
        // Stores retire from the write buffer at L1 store-port speed; the buffer
        // exists to absorb commit bursts (Section 5), not to throttle throughput.
        let write_buffer = WriteBuffer::new(
            config.write_buffer_entries as usize,
            config.l1d.latency.max(1),
        );
        let threads = traces
            .into_iter()
            .map(|t| ThreadContext::new(&config, t))
            .collect();
        let frontend_capacity = config.frontend_depth * config.fetch_width;
        let num_threads = config.num_threads;
        Ok(Core {
            stats: MachineStats::new(num_threads),
            snapshot: SmtSnapshot::new(num_threads),
            config,
            policy,
            mem,
            write_buffer,
            threads,
            cycle: 0,
            stats_cycle_base: 0,
            rotate: 0,
            frontend_capacity,
            totals: SharedTotals::default(),
            completions: BinaryHeap::new(),
            priority: Vec::with_capacity(num_threads),
            flushes: Vec::new(),
            caps: vec![ResourceCaps::default(); num_threads],
            issue_candidates: Vec::with_capacity(64),
            mispredicts: vec![None; num_threads],
            stall_view: Vec::with_capacity(num_threads),
        })
    }

    /// The configuration the core was built with.
    pub fn config(&self) -> &SmtConfig {
        &self.config
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics accumulated so far.
    ///
    /// `stats().cycles` is finalized by the owning simulator's `run`; while
    /// stepping manually, read the live count from [`Core::measured_cycles`]
    /// instead.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Cycles elapsed in the current measurement phase, i.e. since the last
    /// statistics reset (warm-up end).
    pub fn measured_cycles(&self) -> u64 {
        self.cycle - self.stats_cycle_base
    }

    /// Committed instruction count of every hardware thread, in thread order.
    pub(crate) fn committed(&self) -> impl Iterator<Item = u64> + '_ {
        self.threads.iter().map(|t| t.committed)
    }

    /// Zeroes all statistics counters without disturbing microarchitectural state.
    pub(crate) fn reset_stats(&mut self) {
        self.stats = MachineStats::new(self.threads.len());
        self.stats_cycle_base = self.cycle;
    }

    /// Writes the measured cycle count into the statistics record (the owning
    /// simulator's `run` is the single writer of the aggregate count).
    pub(crate) fn finalize_cycles(&mut self) {
        self.stats.cycles = self.measured_cycles();
    }

    /// Advances the core by one cycle against the given shared level.
    pub(crate) fn step_against(&mut self, shared: &mut SharedLlc) {
        // Move the reusable buffers out of `self` for the duration of the cycle
        // (a pointer-sized swap, not an allocation) so the phases can borrow
        // them alongside `&mut self`.
        let mut snapshot = std::mem::take(&mut self.snapshot);
        self.refresh_snapshot(&mut snapshot);
        let mut caps = std::mem::take(&mut self.caps);
        caps.fill(ResourceCaps::default());
        let caps_apply = self
            .policy
            .resource_caps(&snapshot, &self.config, &mut caps);
        self.commit_phase(shared);
        self.writeback_phase();
        self.issue_phase(shared);
        self.dispatch_phase(&mut snapshot, caps_apply.then_some(caps.as_slice()));
        self.fetch_phase(&snapshot);
        self.account_mlp();
        self.cycle += 1;
        self.rotate = (self.rotate + 1) % self.threads.len();
        self.snapshot = snapshot;
        self.caps = caps;
        #[cfg(debug_assertions)]
        self.debug_check_totals();
    }

    // ------------------------------------------------------------------ snapshot

    /// Rewrites the reused snapshot buffer in place with the start-of-cycle
    /// machine state (no allocation in steady state).
    fn refresh_snapshot(&self, snap: &mut SmtSnapshot) {
        snap.begin_cycle(self.cycle);
        snap.rob_total_occupancy = self.totals.rob;
        snap.lsq_total_occupancy = self.totals.lsq;
        snap.iq_int_total_occupancy = self.totals.iq_int;
        snap.iq_fp_total_occupancy = self.totals.iq_fp;
        snap.rename_int_total_used = self.totals.rename_int;
        snap.rename_fp_total_used = self.totals.rename_fp;
        for (i, ctx) in self.threads.iter().enumerate() {
            let t = &mut snap.threads[i];
            t.active = ctx.active;
            t.icount = ctx.occ.icount;
            t.rob_occupancy = ctx.occ.rob;
            t.lsq_occupancy = ctx.occ.lsq;
            t.iq_int_occupancy = ctx.occ.iq_int;
            t.iq_fp_occupancy = ctx.occ.iq_fp;
            t.rename_int_used = ctx.occ.rename_int;
            t.rename_fp_used = ctx.occ.rename_fp;
            t.outstanding_long_latency_loads = ctx.outstanding_lll.len() as u32;
            t.outstanding_l1d_misses = ctx.outstanding_l1d;
            t.oldest_lll_cycle = ctx.oldest_lll_cycle();
        }
    }

    /// Verifies (in debug builds) that the incremental shared-resource totals
    /// agree with a from-scratch recomputation over the per-thread counters,
    /// and that the window cursors agree with the occupancy counters.
    #[cfg(debug_assertions)]
    fn debug_check_totals(&self) {
        let mut expect = SharedTotals::default();
        for ctx in &self.threads {
            expect.rob += ctx.occ.rob;
            expect.lsq += ctx.occ.lsq;
            expect.iq_int += ctx.occ.iq_int;
            expect.iq_fp += ctx.occ.iq_fp;
            expect.rename_int += ctx.occ.rename_int;
            expect.rename_fp += ctx.occ.rename_fp;
            debug_assert_eq!(
                ctx.window.first_undispatched_index(),
                ctx.window.len() - ctx.occ.frontend as usize,
                "dispatch cursor drifted from front-end occupancy"
            );
        }
        debug_assert_eq!(self.totals, expect, "incremental occupancy totals drifted");
    }

    // ------------------------------------------------------------------ commit

    fn commit_phase(&mut self, shared: &mut SharedLlc) {
        let cycle = self.cycle;
        let commit_width = self.config.commit_width;
        for ti in 0..self.threads.len() {
            let mut done = 0;
            while done < commit_width {
                let ctx = &mut self.threads[ti];
                if ctx.window.is_empty() {
                    break;
                }
                let flags = ctx.window.flags_at(0);
                if !flags.commit_ready() {
                    break;
                }
                let op = ctx.window.op_at(0);
                if op.kind == OpKind::Store && !self.write_buffer.try_push(cycle) {
                    // Commit blocks when the write buffer is full (Section 5).
                    break;
                }
                let predicted_mlp_distance = ctx.window.predicted_mlp_distance_at(0);
                ctx.window.pop_front();
                ctx.occ.rob -= 1;
                self.totals.rob -= 1;
                if flags.uses_lsq() {
                    ctx.occ.lsq -= 1;
                    self.totals.lsq -= 1;
                }
                if flags.has_dest() {
                    if flags.dest_fp() {
                        ctx.occ.rename_fp -= 1;
                        self.totals.rename_fp -= 1;
                    } else {
                        ctx.occ.rename_int -= 1;
                        self.totals.rename_int -= 1;
                    }
                }
                ctx.committed += 1;
                let thread_id = ThreadId::new(ti);
                if op.kind == OpKind::Store {
                    if let Some(addr) = op.addr() {
                        self.mem.store_access(shared, thread_id, addr, cycle);
                    }
                }
                let tstats = self.stats.thread_mut(thread_id);
                tstats.committed_instructions += 1;
                match op.kind {
                    OpKind::Load => tstats.loads += 1,
                    OpKind::Store => tstats.stores += 1,
                    OpKind::Branch => tstats.branches += 1,
                    _ => {}
                }
                // Feed the LLSR and, when a long-latency load leaves the window,
                // train the MLP predictors and score the earlier prediction.
                let is_lll_load = flags.is_long_latency() && op.kind == OpKind::Load;
                if is_lll_load {
                    ctx.pending_mlp_evals.push_back(PendingMlpEval {
                        pc: op.pc,
                        predicted_distance: predicted_mlp_distance,
                    });
                }
                if let Some(obs) = ctx.llsr.commit(op.pc, is_lll_load) {
                    ctx.mlp_predictor.update(obs.pc, obs.mlp_distance);
                    ctx.binary_mlp_predictor
                        .update(obs.pc, obs.mlp_distance > 0);
                    if let Some(eval) = ctx.pending_mlp_evals.pop_front() {
                        debug_assert_eq!(eval.pc, obs.pc, "LLSR and prediction FIFOs diverged");
                        let tstats = self.stats.thread_mut(thread_id);
                        let predicted_mlp = eval.predicted_distance > 0;
                        let actual_mlp = obs.mlp_distance > 0;
                        match (predicted_mlp, actual_mlp) {
                            (true, true) => tstats.mlp_pred_true_positive += 1,
                            (false, false) => tstats.mlp_pred_true_negative += 1,
                            (true, false) => tstats.mlp_pred_false_positive += 1,
                            (false, true) => tstats.mlp_pred_false_negative += 1,
                        }
                        tstats.mlp_distance_total += 1;
                        if eval.predicted_distance >= obs.mlp_distance {
                            tstats.mlp_distance_far_enough += 1;
                        }
                    }
                }
                done += 1;
            }
        }
    }

    // ------------------------------------------------------------------ writeback

    /// Event-driven writeback: instead of rescanning every window entry each
    /// cycle, pop the completion events that are due from the min-heap. Events
    /// whose instruction was squashed while in flight find no matching sequence
    /// number (squashed instructions are re-fetched under fresh numbers) and
    /// are dropped.
    fn writeback_phase(&mut self) {
        let cycle = self.cycle;
        self.mispredicts.fill(None);
        while let Some(&Reverse(event)) = self.completions.peek() {
            if event.done_at > cycle {
                break;
            }
            self.completions.pop();
            let ti = event.thread as usize;
            let ctx = &mut self.threads[ti];
            let Some(idx) = ctx.window.position_of_seq(event.seq) else {
                // Stale event: the instruction was squashed after issuing.
                continue;
            };
            let flags = ctx.window.flags_at(idx);
            debug_assert!(
                flags.issued() && !flags.completed() && ctx.window.done_at(idx) == event.done_at
            );
            ctx.window.flags_mut(idx).set_completed(true);
            let seq = event.seq;
            let was_lll = flags.is_long_latency();
            let was_l1_miss = flags.l1_missed();
            let mispredicted_branch =
                ctx.window.op_at(idx).kind == OpKind::Branch && flags.mispredicted();
            if was_l1_miss && ctx.outstanding_l1d > 0 {
                ctx.outstanding_l1d -= 1;
            }
            if was_lll && ctx.outstanding_lll.remove(seq) {
                self.policy
                    .on_long_latency_resolved(ThreadId::new(ti), SeqNum(seq));
            }
            if mispredicted_branch {
                let oldest = &mut self.mispredicts[ti];
                *oldest = Some(oldest.map_or(seq, |s: u64| s.min(seq)));
            }
        }
        for ti in 0..self.threads.len() {
            if let Some(seq) = self.mispredicts[ti] {
                self.stats
                    .thread_mut(ThreadId::new(ti))
                    .branch_mispredictions += 1;
                self.squash(ti, seq, SquashCause::BranchMisprediction);
            }
        }
    }

    // ------------------------------------------------------------------ issue

    fn issue_phase(&mut self, shared: &mut SharedLlc) {
        let cycle = self.cycle;
        let mut remaining = self.config.issue_width;
        let mut int_units = self.config.int_alus;
        let mut ldst_units = self.config.ldst_units;
        let mut fp_units = self.config.fp_units;
        let num_threads = self.threads.len();
        let mut flushes = std::mem::take(&mut self.flushes);
        flushes.clear();

        for offset in 0..num_threads {
            if remaining == 0 {
                break;
            }
            let ti = (self.rotate + offset) % num_threads;
            let thread_id = ThreadId::new(ti);
            // Resume after the settled prefix of already-issued instructions,
            // then gather this thread's ready-to-issue candidates in one tight
            // bitmap pass instead of rescanning the (mostly issued, mostly
            // blocked) window entry by entry.
            let start = self.threads[ti].window.issue_scan_start();
            let mut candidates = std::mem::take(&mut self.issue_candidates);
            candidates.clear();
            self.threads[ti]
                .window
                .collect_issue_candidates(start, &mut candidates);
            let mut candidate_pos = 0;
            while remaining > 0 && candidate_pos < candidates.len() {
                let idx = candidates[candidate_pos] as usize;
                candidate_pos += 1;
                let (seq, op, predicted_lll) = {
                    let window = &self.threads[ti].window;
                    let flags = window.flags_at(idx);
                    (window.seq_at(idx), window.op_at(idx), flags.predicted_lll())
                };
                // Functional-unit availability.
                let unit = match op.kind {
                    OpKind::Load | OpKind::Store => &mut ldst_units,
                    k if k.is_fp() => &mut fp_units,
                    _ => &mut int_units,
                };
                if *unit == 0 {
                    continue;
                }
                *unit -= 1;
                remaining -= 1;

                let mut done_at = cycle + op.kind.exec_latency();
                let mut detected_lll = false;
                let mut l1_missed = false;
                let mut detection_distance = 0;
                let mut detection_has_mlp = false;

                if op.kind == OpKind::Load {
                    let addr = op.addr().unwrap_or(0);
                    let access = self.mem.load_access(shared, thread_id, op.pc, addr, cycle);
                    done_at = access.completion_cycle().max(cycle + 1);
                    l1_missed = access.l1_miss;
                    let tstats = self.stats.thread_mut(thread_id);
                    if access.l1_miss {
                        tstats.l1d_load_misses += 1;
                    }
                    if access.l2_miss {
                        tstats.l2_load_misses += 1;
                    }
                    if access.level == AccessLevel::Memory {
                        tstats.l3_load_misses += 1;
                    }
                    if access.dtlb_miss {
                        tstats.dtlb_misses += 1;
                    }
                    if access.prefetch_hit {
                        tstats.prefetch_hits += 1;
                    }
                    // Score and train the long-latency load predictor (Figure 6).
                    tstats.lll_pred_total += 1;
                    if predicted_lll == access.long_latency {
                        tstats.lll_pred_correct += 1;
                    }
                    if access.long_latency {
                        tstats.lll_pred_miss_total += 1;
                        if predicted_lll {
                            tstats.lll_pred_miss_correct += 1;
                        }
                        tstats.long_latency_loads += 1;
                        detected_lll = true;
                    }
                    let ctx = &mut self.threads[ti];
                    ctx.lll_predictor.update(op.pc, access.long_latency);
                    if access.long_latency {
                        detection_distance = ctx.mlp_predictor.predict(op.pc);
                        detection_has_mlp = ctx.binary_mlp_predictor.predict(op.pc);
                        ctx.outstanding_lll.insert(seq, cycle);
                        self.stats
                            .thread_mut(thread_id)
                            .record_mlp_distance(detection_distance);
                    }
                    if access.l1_miss {
                        ctx.outstanding_l1d += 1;
                    }
                } else if op.kind == OpKind::Store {
                    done_at = cycle + 1;
                }

                {
                    let ctx = &mut self.threads[ti];
                    ctx.window.mark_issued(idx);
                    let flags = ctx.window.flags_mut(idx);
                    flags.set_l1_missed(l1_missed);
                    if detected_lll {
                        flags.set_is_long_latency(true);
                        flags.set_predicted_has_mlp(detection_has_mlp);
                    }
                    let uses_fp_iq = flags.uses_fp_iq();
                    ctx.window.set_done_at(idx, done_at);
                    if detected_lll {
                        ctx.window
                            .set_predicted_mlp_distance(idx, detection_distance);
                    }
                    if uses_fp_iq {
                        ctx.occ.iq_fp -= 1;
                        self.totals.iq_fp -= 1;
                    } else {
                        ctx.occ.iq_int -= 1;
                        self.totals.iq_int -= 1;
                    }
                    ctx.occ.icount -= 1;
                    self.completions.push(Reverse(CompletionEvent {
                        done_at,
                        thread: ti as u32,
                        seq,
                    }));
                }

                if op.kind == OpKind::Load {
                    let latest = SeqNum(self.threads[ti].latest_fetched_seq);
                    if detected_lll {
                        if let Some(req) = self.policy.on_long_latency_detected(
                            thread_id,
                            op.pc,
                            SeqNum(seq),
                            latest,
                            detection_distance,
                            detection_has_mlp,
                        ) {
                            flushes.push(req);
                        }
                    } else {
                        self.policy
                            .on_load_executed_hit(thread_id, op.pc, SeqNum(seq));
                    }
                }
            }
            self.issue_candidates = candidates;
        }

        for req in flushes.drain(..) {
            self.apply_flush(req);
        }
        self.flushes = flushes;
    }

    // ------------------------------------------------------------------ dispatch

    fn dispatch_phase(&mut self, snapshot: &mut SmtSnapshot, caps: Option<&[ResourceCaps]>) {
        let cycle = self.cycle;
        let cfg = &self.config;
        let mut remaining = cfg.dispatch_width;
        // Shared occupancy comes from the incrementally maintained totals; the
        // locals track this cycle's allocations and are folded back afterwards.
        let mut rob_total = self.totals.rob;
        let mut lsq_total = self.totals.lsq;
        let mut iq_int_total = self.totals.iq_int;
        let mut iq_fp_total = self.totals.iq_fp;
        let mut ren_int_total = self.totals.rename_int;
        let mut ren_fp_total = self.totals.rename_fp;
        let mut shared_blocked = false;
        let num_threads = self.threads.len();

        for offset in 0..num_threads {
            if remaining == 0 {
                break;
            }
            let ti = (self.rotate + offset) % num_threads;
            let thread_id = ThreadId::new(ti);
            loop {
                if remaining == 0 {
                    break;
                }
                let ctx = &self.threads[ti];
                if ctx.occ.frontend == 0 {
                    break;
                }
                // The dispatch cursor is the first undispatched instruction;
                // it coincides with `len - frontend` (checked in debug builds
                // each cycle) but needs no recomputation.
                let idx = ctx.window.first_undispatched_index();
                if ctx.window.frontend_ready_at(idx) > cycle {
                    break;
                }
                let op = ctx.window.op_at(idx);
                let uses_lsq = op.kind.is_mem();
                let uses_fp_iq = op.kind.is_fp();
                let has_dest = matches!(
                    op.kind,
                    OpKind::IntAlu | OpKind::IntMul | OpKind::FpOp | OpKind::FpLong | OpKind::Load
                );
                let dest_fp = op.kind.is_fp();

                // Shared-resource availability (ROB, LSQ, IQs, rename registers).
                let shared_ok = rob_total < cfg.rob_size
                    && (!uses_lsq || lsq_total < cfg.lsq_size)
                    && (uses_fp_iq && iq_fp_total < cfg.iq_fp_size
                        || !uses_fp_iq && iq_int_total < cfg.iq_int_size)
                    && (!has_dest
                        || (dest_fp && ren_fp_total < cfg.rename_fp
                            || !dest_fp && ren_int_total < cfg.rename_int));
                if !shared_ok {
                    shared_blocked = true;
                    break;
                }

                // Per-thread caps from explicit resource-management policies.
                if let Some(caps) = caps {
                    let cap = &caps[ti];
                    let occ = &ctx.occ;
                    let cap_ok = cap.rob.is_none_or(|c| occ.rob < c)
                        && (!uses_lsq || cap.lsq.is_none_or(|c| occ.lsq < c))
                        && (uses_fp_iq && cap.iq_fp.is_none_or(|c| occ.iq_fp < c)
                            || !uses_fp_iq && cap.iq_int.is_none_or(|c| occ.iq_int < c))
                        && (!has_dest
                            || (dest_fp && cap.rename_fp.is_none_or(|c| occ.rename_fp < c)
                                || !dest_fp && cap.rename_int.is_none_or(|c| occ.rename_int < c)));
                    if !cap_ok {
                        break;
                    }
                }

                // Resolve source-operand producers once; issue then checks
                // readiness by window offset instead of re-searching each cycle.
                let dep_offsets = ctx.window.resolve_dep_offsets(idx);

                // Allocate and mark dispatched.
                let ctx = &mut self.threads[ti];
                let seq = ctx.window.seq_at(idx);
                let pc = op.pc;
                ctx.window.set_src_dep_offsets(idx, dep_offsets);
                ctx.window.mark_dispatched(idx);
                {
                    let flags = ctx.window.flags_mut(idx);
                    flags.set_uses_lsq(uses_lsq);
                    flags.set_uses_fp_iq(uses_fp_iq);
                    flags.set_has_dest(has_dest);
                    flags.set_dest_fp(dest_fp);
                }
                ctx.occ.frontend -= 1;
                ctx.occ.rob += 1;
                rob_total += 1;
                if uses_lsq {
                    ctx.occ.lsq += 1;
                    lsq_total += 1;
                }
                if uses_fp_iq {
                    ctx.occ.iq_fp += 1;
                    iq_fp_total += 1;
                } else {
                    ctx.occ.iq_int += 1;
                    iq_int_total += 1;
                }
                if has_dest {
                    if dest_fp {
                        ctx.occ.rename_fp += 1;
                        ren_fp_total += 1;
                    } else {
                        ctx.occ.rename_int += 1;
                        ren_int_total += 1;
                    }
                }
                remaining -= 1;

                // Front-end long-latency / MLP prediction for loads.
                if op.kind == OpKind::Load {
                    let (lll, distance, has_mlp) = ctx.predict_load(pc);
                    let flags = ctx.window.flags_mut(idx);
                    flags.set_predicted_lll(lll);
                    flags.set_predicted_has_mlp(has_mlp);
                    ctx.window.set_predicted_mlp_distance(idx, distance);
                    self.policy.on_load_predicted(
                        thread_id,
                        pc,
                        SeqNum(seq),
                        lll,
                        distance,
                        has_mlp,
                    );
                }
            }
        }

        // Fold this cycle's allocations back into the running totals before any
        // stall-triggered flush (whose squashes decrement them again).
        self.totals = SharedTotals {
            rob: rob_total,
            lsq: lsq_total,
            iq_int: iq_int_total,
            iq_fp: iq_fp_total,
            rename_int: ren_int_total,
            rename_fp: ren_fp_total,
        };

        if shared_blocked {
            // Flip the stall flag and refresh the outstanding-load view in
            // place (saving the overwritten start-of-cycle values) instead of
            // cloning the snapshot for the policy callback.
            snapshot.resource_stalled = true;
            let mut stall_view = std::mem::take(&mut self.stall_view);
            stall_view.clear();
            for (i, ctx) in self.threads.iter().enumerate() {
                let t = &mut snapshot.threads[i];
                stall_view.push((t.outstanding_long_latency_loads, t.oldest_lll_cycle));
                t.outstanding_long_latency_loads = ctx.outstanding_lll.len() as u32;
                t.oldest_lll_cycle = ctx.oldest_lll_cycle();
            }
            let mut flushes = std::mem::take(&mut self.flushes);
            flushes.clear();
            self.policy.on_resource_stall(snapshot, &mut flushes);
            for req in flushes.drain(..) {
                self.apply_flush(req);
            }
            self.flushes = flushes;
            // Restore the start-of-cycle view: the fetch phase must see the
            // same snapshot the pre-refactor pipeline handed it.
            snapshot.resource_stalled = false;
            for (i, (lll, oldest)) in stall_view.drain(..).enumerate() {
                snapshot.threads[i].outstanding_long_latency_loads = lll;
                snapshot.threads[i].oldest_lll_cycle = oldest;
            }
            self.stall_view = stall_view;
        }
    }

    // ------------------------------------------------------------------ fetch

    fn fetch_phase(&mut self, snapshot: &SmtSnapshot) {
        let cycle = self.cycle;
        let mut priority = std::mem::take(&mut self.priority);
        self.policy.fetch_priority(snapshot, &mut priority);
        // Account gated cycles for active threads the policy excluded, via a
        // "selected" bitmask filled in one pass over the priority list
        // (MAX_THREADS <= 64) instead of an O(threads) scan per thread.
        let mut selected: u64 = 0;
        for t in &priority {
            selected |= 1 << t.index();
        }
        for ti in 0..self.threads.len() {
            if self.threads[ti].active && selected & (1 << ti) == 0 {
                self.stats.thread_mut(ThreadId::new(ti)).fetch_gated_cycles += 1;
            }
        }
        let mut budget = self.config.fetch_width;
        let mut threads_used = 0;
        let frontend_ready_at = cycle + self.config.frontend_depth as u64;
        for &t in &priority {
            if budget == 0 || threads_used >= self.config.fetch_threads_per_cycle {
                break;
            }
            let ti = t.index();
            if !self.threads[ti].active {
                continue;
            }
            if self.threads[ti].occ.frontend >= self.frontend_capacity {
                continue;
            }
            let mut fetched_here = 0;
            while budget > 0
                && fetched_here < self.config.fetch_width
                && self.threads[ti].occ.frontend < self.frontend_capacity
            {
                let ctx = &mut self.threads[ti];
                let (op, replay) = ctx.pull_op();
                let seq = ctx.next_seq;
                ctx.next_seq += 1;
                ctx.latest_fetched_seq = seq;
                let mut mispredicted = false;
                let mut predicted_taken = false;
                if let Some(entry) = replay {
                    // Re-fetch of a squashed instruction: replay the original
                    // prediction outcome; the predictor was already trained.
                    mispredicted = entry.mispredicted;
                    predicted_taken = entry.predicted_taken;
                } else if let (OpKind::Branch, Some(info)) = (op.kind, op.branch) {
                    // First fetch of this dynamic branch: predict and train at the
                    // same global-history point, exactly once per dynamic branch.
                    let pred = ctx.branch_predictor.predict(op.pc);
                    mispredicted =
                        ctx.branch_predictor
                            .update(op.pc, info.taken, info.target, pred);
                    predicted_taken = pred.taken;
                }
                let mut flags = OpFlags::default();
                flags.set_mispredicted(mispredicted);
                flags.set_predicted_taken(predicted_taken);
                ctx.window.push_back(seq, op, frontend_ready_at, flags);
                ctx.occ.frontend += 1;
                ctx.occ.icount += 1;
                self.stats.thread_mut(t).fetched_instructions += 1;
                self.policy.on_fetch(t, SeqNum(seq));
                budget -= 1;
                fetched_here += 1;
                if predicted_taken {
                    // The fetch group ends at a predicted-taken branch.
                    break;
                }
            }
            if fetched_here > 0 {
                threads_used += 1;
            }
        }
        self.priority = priority;
    }

    // ------------------------------------------------------------------ squash / flush

    fn apply_flush(&mut self, request: FlushRequest) {
        let ti = request.thread.index();
        if ti >= self.threads.len() {
            return;
        }
        let squashed = self.squash(ti, request.keep_up_to.0, SquashCause::PolicyFlush);
        if squashed > 0 {
            self.stats.thread_mut(request.thread).policy_flushes += 1;
        }
    }

    /// Removes every instruction of thread `ti` with a sequence number greater than
    /// `keep_up_to`, returning how many were squashed. Squashed operations are
    /// queued for re-fetch in program order.
    fn squash(&mut self, ti: usize, keep_up_to: u64, cause: SquashCause) -> u64 {
        let thread_id = ThreadId::new(ti);
        let mut squashed = 0;
        {
            let ctx = &mut self.threads[ti];
            while !ctx.window.is_empty() {
                let last = ctx.window.len() - 1;
                let seq = ctx.window.seq_at(last);
                if seq <= keep_up_to {
                    break;
                }
                let flags = ctx.window.flags_at(last);
                let op = ctx.window.op_at(last);
                ctx.window.pop_back();
                if flags.dispatched() {
                    ctx.occ.rob -= 1;
                    self.totals.rob -= 1;
                    if flags.uses_lsq() {
                        ctx.occ.lsq -= 1;
                        self.totals.lsq -= 1;
                    }
                    if !flags.issued() {
                        if flags.uses_fp_iq() {
                            ctx.occ.iq_fp -= 1;
                            self.totals.iq_fp -= 1;
                        } else {
                            ctx.occ.iq_int -= 1;
                            self.totals.iq_int -= 1;
                        }
                        ctx.occ.icount -= 1;
                    }
                    if flags.has_dest() {
                        if flags.dest_fp() {
                            ctx.occ.rename_fp -= 1;
                            self.totals.rename_fp -= 1;
                        } else {
                            ctx.occ.rename_int -= 1;
                            self.totals.rename_int -= 1;
                        }
                    }
                    if flags.issued() && !flags.completed() {
                        if flags.is_long_latency() {
                            ctx.outstanding_lll.remove(seq);
                        }
                        if flags.l1_missed() && ctx.outstanding_l1d > 0 {
                            ctx.outstanding_l1d -= 1;
                        }
                    }
                } else {
                    ctx.occ.frontend -= 1;
                    ctx.occ.icount -= 1;
                }
                ctx.refetch.push_front(RefetchEntry {
                    op,
                    mispredicted: flags.mispredicted(),
                    predicted_taken: flags.predicted_taken(),
                });
                squashed += 1;
            }
            ctx.latest_fetched_seq = ctx.latest_fetched_seq.min(keep_up_to);
        }
        if squashed > 0 {
            let tstats = self.stats.thread_mut(thread_id);
            match cause {
                SquashCause::BranchMisprediction => tstats.squashed_by_branch += squashed,
                SquashCause::PolicyFlush => tstats.squashed_by_policy += squashed,
            }
            self.policy.on_squash(thread_id, SeqNum(keep_up_to));
        }
        squashed
    }

    // ------------------------------------------------------------------ accounting

    fn account_mlp(&mut self) {
        for ti in 0..self.threads.len() {
            let outstanding = self.threads[ti].outstanding_lll.len() as u64;
            if outstanding > 0 {
                let tstats = self.stats.thread_mut(ThreadId::new(ti));
                tstats.mlp_cycles += 1;
                tstats.mlp_outstanding_sum += outstanding;
            }
        }
    }
}

/// The single-core SMT processor simulator: one [`Core`] plus an exclusively
/// owned shared level. This is the machine of the paper; behaviour is
/// bit-for-bit identical to the pre-chip-refactor simulator.
///
/// # Example
///
/// ```
/// use smt_core::pipeline::{SimOptions, SmtSimulator};
/// use smt_trace::{spec, SyntheticTraceGenerator};
/// use smt_types::SmtConfig;
///
/// # fn main() -> Result<(), smt_types::SimError> {
/// let cfg = SmtConfig::baseline(2);
/// let t0 = SyntheticTraceGenerator::new(spec::benchmark("mcf")?, 1);
/// let t1 = SyntheticTraceGenerator::new(spec::benchmark("gcc")?, 2);
/// let mut sim = SmtSimulator::new(cfg, vec![Box::new(t0), Box::new(t1)])?;
/// let stats = sim.run(SimOptions::with_instructions(2_000));
/// assert!(stats.cycles > 0);
/// assert!(stats.threads[0].committed_instructions >= 2_000
///     || stats.threads[1].committed_instructions >= 2_000);
/// # Ok(())
/// # }
/// ```
pub struct SmtSimulator {
    core: Core,
    shared: SharedLlc,
}

impl SmtSimulator {
    /// Builds a simulator for `config` running one trace source per hardware
    /// thread, using the fetch policy named in the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration does not validate
    /// and [`SimError::InvalidWorkload`] if the number of traces does not match
    /// `config.num_threads`.
    pub fn new(config: SmtConfig, traces: Vec<Box<dyn TraceSource>>) -> Result<Self, SimError> {
        let policy = build_policy(config.fetch_policy, &config);
        Self::with_policy(config, traces, policy)
    }

    /// Builds a simulator with an explicitly provided fetch policy (used to test
    /// custom policies against the built-in ones).
    ///
    /// # Errors
    ///
    /// Same as [`SmtSimulator::new`].
    pub fn with_policy(
        config: SmtConfig,
        traces: Vec<Box<dyn TraceSource>>,
        policy: Box<dyn FetchPolicy>,
    ) -> Result<Self, SimError> {
        config.validate()?;
        let shared = SharedLlc::single_core(&config);
        let core = Core::with_policy(config, traces, policy, 0)?;
        Ok(SmtSimulator { core, shared })
    }

    /// The configuration the simulator was built with.
    pub fn config(&self) -> &SmtConfig {
        self.core.config()
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.core.cycle()
    }

    /// Statistics accumulated so far.
    ///
    /// `stats().cycles` is finalized by [`SmtSimulator::run`]; while stepping
    /// the simulator manually, read the live count from
    /// [`SmtSimulator::measured_cycles`] instead.
    pub fn stats(&self) -> &MachineStats {
        self.core.stats()
    }

    /// Cycles elapsed in the current measurement phase, i.e. since the last
    /// statistics reset (warm-up end).
    pub fn measured_cycles(&self) -> u64 {
        self.core.measured_cycles()
    }

    /// Runs the warm-up phase followed by the measured phase, stopping the
    /// measured phase once any thread has committed the instruction budget (the
    /// paper's stop criterion) or the cycle limit is hit, and returns the
    /// statistics of the measured phase.
    pub fn run(&mut self, options: SimOptions) -> MachineStats {
        self.warm_up(options.warmup_instructions_per_thread, options.max_cycles);
        let baselines: Vec<u64> = self.core.committed().collect();
        while self.core.cycle() < options.max_cycles {
            if self
                .core
                .committed()
                .zip(&baselines)
                .any(|(committed, &base)| committed - base >= options.max_instructions_per_thread)
            {
                break;
            }
            self.step();
        }
        // `run` is the single writer of the aggregate cycle count; `step` only
        // advances the raw cycle counter.
        self.core.finalize_cycles();
        self.core.stats().clone()
    }

    /// Runs until every thread has committed `instructions` further instructions,
    /// then clears all statistics (microarchitectural state — caches, TLBs,
    /// predictors, stream buffers — stays warm). A zero-length warm-up is a no-op.
    pub fn warm_up(&mut self, instructions: u64, max_cycles: u64) {
        if instructions == 0 {
            return;
        }
        let targets: Vec<u64> = self.core.committed().map(|c| c + instructions).collect();
        while self.core.cycle() < max_cycles
            && self
                .core
                .committed()
                .zip(&targets)
                .any(|(committed, &target)| committed < target)
        {
            self.step();
        }
        self.reset_stats();
    }

    /// Zeroes all statistics counters without disturbing microarchitectural state.
    pub fn reset_stats(&mut self) {
        self.core.reset_stats();
    }

    /// Advances the machine by one cycle.
    pub fn step(&mut self) {
        self.core.step_against(&mut self.shared);
    }
}

/// Why a range of instructions was squashed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SquashCause {
    BranchMisprediction,
    PolicyFlush,
}
