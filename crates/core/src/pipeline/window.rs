//! Struct-of-arrays ring buffer holding one thread's in-flight instructions.
//!
//! The window replaces a `VecDeque` of ~100-byte AoS records with parallel
//! columns (sequence numbers, trace ops, timestamps, dependence offsets and one
//! packed [`OpFlags`] word per slot) over a fixed power-of-two ring, so each
//! pipeline phase streams only the columns it actually reads: commit tests one
//! `u16` per head entry, the issue scan walks the flags column, and writeback
//! binary-searches the dense `seq` column. Two monotone cursors
//! (first-undispatched, first-unissued) let dispatch and issue resume from the
//! settled prefix instead of rescanning the window from the front each cycle.
//!
//! Mutation is restricted to the three pipeline-shaped operations — push at the
//! back (fetch), pop at the front (commit), pop at the back (squash) — which is
//! what makes the dispatch-time dependence offsets and the per-phase cursors
//! stable.

use smt_types::{OpFlags, TraceOp};

/// Sentinel marking an absent source-dependence offset (the producer was
/// outside the window at dispatch time, so the operand is always ready).
pub const NO_DEP: u32 = u32::MAX;

/// Fixed-capacity struct-of-arrays ring buffer of in-flight instructions, in
/// program order (front = oldest).
///
/// Logical index 0 is the oldest instruction; [`OpWindow::push_back`] appends
/// at fetch, [`OpWindow::pop_front`] retires at commit, [`OpWindow::pop_back`]
/// squashes from the youngest end. Sequence numbers are strictly increasing
/// from front to back.
///
/// # Example
///
/// ```
/// use smt_core::pipeline::window::OpWindow;
/// use smt_types::{OpFlags, TraceOp};
///
/// let mut w = OpWindow::new(8);
/// w.push_back(1, TraceOp::int_alu(0x40), 14, OpFlags::default());
/// w.push_back(2, TraceOp::int_alu(0x44), 14, OpFlags::default());
/// assert_eq!(w.len(), 2);
/// assert_eq!(w.seq_at(0), 1);
/// w.mark_dispatched(0);
/// w.mark_issued(0);
/// w.flags_mut(0).set_completed(true);
/// w.pop_front();
/// assert_eq!(w.seq_at(0), 2);
/// ```
#[derive(Clone, Debug)]
pub struct OpWindow {
    /// Physical index of logical slot 0.
    head: usize,
    /// Number of live entries.
    len: usize,
    /// Capacity - 1; capacity is a power of two.
    mask: usize,
    /// Entries ever popped from the front: the global position of logical 0.
    /// Cursors are stored in this monotone coordinate system so front pops
    /// never invalidate them.
    base: u64,
    /// Global position of the oldest undispatched instruction. Everything
    /// before it is dispatched; everything at or after it is not (dispatch is
    /// strictly in order).
    first_undispatched: u64,
    /// Global position at or below which every instruction has issued. Issue
    /// is out of order, so entries *after* this cursor may also have issued;
    /// the cursor is a resume point, not a partition.
    first_unissued: u64,
    seq: Box<[u64]>,
    op: Box<[TraceOp]>,
    frontend_ready_at: Box<[u64]>,
    done_at: Box<[u64]>,
    predicted_mlp_distance: Box<[u32]>,
    src_dep_offsets: Box<[[u32; 2]]>,
    flags: Box<[OpFlags]>,
    /// One bit per physical slot, set while the slot's instruction has not yet
    /// issued. The issue-queue sizes cap unissued instructions at a small
    /// fraction of the window, so the issue scan jumps between set bits
    /// (`u64::trailing_zeros`) instead of stepping over the issued majority
    /// slot by slot. Bits of dead slots are stale and masked off by the scan's
    /// logical bounds.
    unissued: Box<[u64]>,
}

impl OpWindow {
    /// Creates a window able to hold at least `capacity` instructions (rounded
    /// up to the next power of two).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        let capacity = capacity.next_power_of_two();
        OpWindow {
            head: 0,
            len: 0,
            mask: capacity - 1,
            base: 0,
            first_undispatched: 0,
            first_unissued: 0,
            seq: vec![0; capacity].into_boxed_slice(),
            op: vec![TraceOp::int_alu(0); capacity].into_boxed_slice(),
            frontend_ready_at: vec![0; capacity].into_boxed_slice(),
            done_at: vec![u64::MAX; capacity].into_boxed_slice(),
            predicted_mlp_distance: vec![0; capacity].into_boxed_slice(),
            src_dep_offsets: vec![[NO_DEP; 2]; capacity].into_boxed_slice(),
            flags: vec![OpFlags::default(); capacity].into_boxed_slice(),
            unissued: vec![0; capacity.div_ceil(64)].into_boxed_slice(),
        }
    }

    /// Number of instructions currently in flight.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window holds no instructions.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slot count (a power of two).
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    #[inline(always)]
    fn slot(&self, index: usize) -> usize {
        debug_assert!(index < self.len, "index {index} out of {}", self.len);
        (self.head + index) & self.mask
    }

    // ------------------------------------------------------------ mutation

    /// Appends a fetched instruction at the back. `flags` carries the
    /// fetch-time bits (branch outcome replay); all pipeline-progress bits
    /// must be clear.
    ///
    /// # Panics
    ///
    /// Panics if the window is full or `seq` does not exceed the youngest
    /// in-flight sequence number.
    #[inline]
    pub fn push_back(&mut self, seq: u64, op: TraceOp, frontend_ready_at: u64, flags: OpFlags) {
        assert!(self.len <= self.mask, "instruction window overflow");
        debug_assert!(
            !(flags.dispatched() || flags.issued() || flags.completed()),
            "fetch-time flags must not carry pipeline progress"
        );
        debug_assert!(
            self.len == 0 || self.seq_at(self.len - 1) < seq,
            "sequence numbers must be strictly increasing"
        );
        let slot = (self.head + self.len) & self.mask;
        self.seq[slot] = seq;
        self.op[slot] = op;
        self.frontend_ready_at[slot] = frontend_ready_at;
        self.done_at[slot] = u64::MAX;
        self.predicted_mlp_distance[slot] = 0;
        self.src_dep_offsets[slot] = [NO_DEP; 2];
        self.flags[slot] = flags;
        self.unissued[slot / 64] |= 1 << (slot % 64);
        self.len += 1;
    }

    /// Retires the oldest instruction (callers read its columns at logical
    /// index 0 first).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the window is empty.
    #[inline]
    pub fn pop_front(&mut self) {
        debug_assert!(self.len > 0, "pop_front on empty window");
        debug_assert!(
            self.flags[self.head].issued(),
            "pop_front may only retire issued instructions"
        );
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
        self.base += 1;
        // Commit only retires dispatched instructions, so the dispatch cursor
        // can never fall behind the new front; the (lazily advanced) issue
        // cursor may lag the front by the retired prefix and is pulled level.
        debug_assert!(self.first_undispatched >= self.base);
        self.first_unissued = self.first_unissued.max(self.base);
    }

    /// Squashes the youngest instruction (callers read its columns at logical
    /// index `len() - 1` first). The dispatch/issue cursors are clamped to the
    /// shortened window — the one sanctioned way they move backwards.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the window is empty.
    #[inline]
    pub fn pop_back(&mut self) {
        debug_assert!(self.len > 0, "pop_back on empty window");
        self.len -= 1;
        let end = self.base + self.len as u64;
        self.first_undispatched = self.first_undispatched.min(end);
        self.first_unissued = self.first_unissued.min(end);
    }

    // ------------------------------------------------------------ cursors

    /// Logical index of the oldest undispatched instruction — where the
    /// in-order dispatch phase resumes. Equals `len()` when everything in the
    /// window has dispatched.
    #[inline(always)]
    pub fn first_undispatched_index(&self) -> usize {
        (self.first_undispatched - self.base) as usize
    }

    /// Marks the instruction at `index` dispatched and advances the dispatch
    /// cursor past it. Dispatch is strictly in order: `index` must be exactly
    /// [`OpWindow::first_undispatched_index`].
    #[inline]
    pub fn mark_dispatched(&mut self, index: usize) {
        debug_assert_eq!(
            index,
            self.first_undispatched_index(),
            "dispatch must proceed in order (cursor may never move backwards)"
        );
        let slot = self.slot(index);
        debug_assert!(!self.flags[slot].dispatched());
        self.flags[slot].set_dispatched(true);
        self.first_undispatched += 1;
    }

    /// Advances the issue cursor past the settled prefix of issued
    /// instructions and returns the logical index the issue scan starts from.
    /// The cursor only ever moves forward here; `pop_back` is the only place
    /// it can shrink.
    #[inline]
    pub fn issue_scan_start(&mut self) -> usize {
        debug_assert!(self.first_unissued >= self.base);
        while self.first_unissued < self.first_undispatched {
            let idx = (self.first_unissued - self.base) as usize;
            if !self.flags[self.slot(idx)].issued() {
                break;
            }
            self.first_unissued += 1;
        }
        debug_assert!(
            self.first_unissued <= self.first_undispatched,
            "issue cursor overtook the dispatch cursor"
        );
        (self.first_unissued - self.base) as usize
    }

    /// Marks the (dispatched, unissued) instruction at logical `index` as
    /// issued, clearing its bit in the unissued bitmap.
    #[inline]
    pub fn mark_issued(&mut self, index: usize) {
        let slot = self.slot(index);
        debug_assert!(self.flags[slot].dispatched() && !self.flags[slot].issued());
        self.flags[slot].set_issued(true);
        self.unissued[slot / 64] &= !(1 << (slot % 64));
    }

    /// Appends to `out` the logical index of every dispatched, unissued
    /// instruction at or after `from` whose source operands are ready, in
    /// program order — the issue phase's candidate list, gathered in one tight
    /// pass over the unissued bitmap.
    ///
    /// Readiness is stable for the duration of an issue phase (`completed`
    /// bits only change at writeback, and dispatch-time dependence offsets
    /// never move), so collecting up front is equivalent to re-testing each
    /// candidate mid-scan — while instructions that cannot issue this cycle
    /// never leave this loop.
    pub fn collect_issue_candidates(&self, from: usize, out: &mut Vec<u32>) {
        let end = self.first_undispatched_index();
        let mut idx = from;
        while idx < end {
            let slot = (self.head + idx) & self.mask;
            // The physical run from `slot` is contiguous until the ring wraps
            // or the dispatched region ends.
            let run = (self.capacity() - slot).min(end - idx);
            let run_end = slot + run;
            let mut word_idx = slot / 64;
            let mut word = self.unissued[word_idx] >> (slot % 64) << (slot % 64);
            'words: loop {
                while word != 0 {
                    let bit = (word_idx * 64) + word.trailing_zeros() as usize;
                    if bit >= run_end {
                        break 'words;
                    }
                    let candidate = idx + (bit - slot);
                    if self.deps_ready(candidate) {
                        out.push(candidate as u32);
                    }
                    word &= word - 1;
                }
                word_idx += 1;
                if word_idx * 64 >= run_end {
                    break;
                }
                word = self.unissued[word_idx];
            }
            idx += run;
        }
    }

    // ------------------------------------------------------------ lookup

    /// Logical index of the in-flight instruction with sequence number `seq`,
    /// if present. Sequence numbers are dense except across squash gaps, so
    /// the common case is a single O(1) probe at `seq - front_seq`; the
    /// fallback is a binary search over the (strictly increasing) sequence
    /// column.
    pub fn position_of_seq(&self, seq: u64) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let front = self.seq[self.head];
        if seq < front {
            return None;
        }
        let guess = (seq - front) as usize;
        if guess < self.len && self.seq[(self.head + guess) & self.mask] == seq {
            return Some(guess);
        }
        let mut lo = 0usize;
        let mut hi = self.len;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let s = self.seq[(self.head + mid) & self.mask];
            if s < seq {
                lo = mid + 1;
            } else if s > seq {
                hi = mid;
            } else {
                return Some(mid);
            }
        }
        None
    }

    // ------------------------------------------------------------ columns

    /// Sequence number of the instruction at logical `index`.
    #[inline(always)]
    pub fn seq_at(&self, index: usize) -> u64 {
        self.seq[self.slot(index)]
    }

    /// Trace operation of the instruction at logical `index`.
    #[inline(always)]
    pub fn op_at(&self, index: usize) -> TraceOp {
        self.op[self.slot(index)]
    }

    /// Cycle at which the instruction at logical `index` has traversed the
    /// front end and may dispatch.
    #[inline(always)]
    pub fn frontend_ready_at(&self, index: usize) -> u64 {
        self.frontend_ready_at[self.slot(index)]
    }

    /// Cycle at which execution of the instruction at logical `index`
    /// completes (valid once issued).
    #[inline(always)]
    pub fn done_at(&self, index: usize) -> u64 {
        self.done_at[self.slot(index)]
    }

    /// Sets the completion cycle of the instruction at logical `index`.
    #[inline(always)]
    pub fn set_done_at(&mut self, index: usize, done_at: u64) {
        let slot = self.slot(index);
        self.done_at[slot] = done_at;
    }

    /// Predicted (or detection-time) MLP distance of the load at logical
    /// `index`.
    #[inline(always)]
    pub fn predicted_mlp_distance_at(&self, index: usize) -> u32 {
        self.predicted_mlp_distance[self.slot(index)]
    }

    /// Sets the predicted MLP distance of the load at logical `index`.
    #[inline(always)]
    pub fn set_predicted_mlp_distance(&mut self, index: usize, distance: u32) {
        let slot = self.slot(index);
        self.predicted_mlp_distance[slot] = distance;
    }

    /// Source-dependence offsets of the instruction at logical `index`
    /// ([`NO_DEP`] = no in-window producer).
    #[inline(always)]
    pub fn src_dep_offsets_at(&self, index: usize) -> [u32; 2] {
        self.src_dep_offsets[self.slot(index)]
    }

    /// Stores the dispatch-time dependence offsets of the instruction at
    /// logical `index`.
    #[inline(always)]
    pub fn set_src_dep_offsets(&mut self, index: usize, offsets: [u32; 2]) {
        let slot = self.slot(index);
        self.src_dep_offsets[slot] = offsets;
    }

    /// Packed status flags of the instruction at logical `index`.
    #[inline(always)]
    pub fn flags_at(&self, index: usize) -> OpFlags {
        self.flags[self.slot(index)]
    }

    /// Mutable access to the packed status flags at logical `index`.
    ///
    /// The `dispatched` bit must be set through [`OpWindow::mark_dispatched`]
    /// so the dispatch cursor stays consistent.
    #[inline(always)]
    pub fn flags_mut(&mut self, index: usize) -> &mut OpFlags {
        let slot = self.slot(index);
        &mut self.flags[slot]
    }

    /// Whether the source operands of the instruction at logical `index` are
    /// available, using the producer offsets resolved at dispatch: a live
    /// producer sits exactly `offset` slots earlier; an offset beyond `index`
    /// means the producer has committed (its value is available).
    #[inline]
    pub fn deps_ready(&self, index: usize) -> bool {
        let [a, b] = self.src_dep_offsets[self.slot(index)];
        for offset in [a, b] {
            if offset == NO_DEP {
                continue;
            }
            let offset = offset as usize;
            if offset <= index && !self.flags[self.slot(index - offset)].completed() {
                return false;
            }
        }
        true
    }

    /// Resolves the source-operand producers of the (about to dispatch)
    /// instruction at logical `index` into backward slot offsets, once. The
    /// common case (no squash gap in the sequence numbers between producer and
    /// consumer) is a single O(1) probe; after a squash gap it falls back to a
    /// binary search. A missing producer (already committed, or unreachable
    /// across a squash) yields [`NO_DEP`] = always ready.
    pub fn resolve_dep_offsets(&self, index: usize) -> [u32; 2] {
        let slot = self.slot(index);
        let seq = self.seq[slot];
        let op = &self.op[slot];
        let mut offsets = [NO_DEP; 2];
        for (out, dep) in offsets.iter_mut().zip(op.src_deps) {
            let Some(distance) = dep else { continue };
            let distance = distance as u64;
            if distance >= seq {
                continue;
            }
            let producer_seq = seq - distance;
            let pos = match (index as u64).checked_sub(distance) {
                Some(pos) if self.seq_at(pos as usize) == producer_seq => Some(pos as usize),
                _ => self.position_of_seq(producer_seq),
            };
            if let Some(pos) = pos {
                *out = (index - pos) as u32;
            }
        }
        offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push(w: &mut OpWindow, seq: u64) {
        w.push_back(
            seq,
            TraceOp::int_alu(0x40 + 4 * seq),
            14,
            OpFlags::default(),
        );
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(OpWindow::new(1).capacity(), 1);
        assert_eq!(OpWindow::new(5).capacity(), 8);
        assert_eq!(OpWindow::new(312).capacity(), 512);
    }

    #[test]
    fn ring_wraps_across_capacity() {
        let mut w = OpWindow::new(4);
        for seq in 1..=4 {
            push(&mut w, seq);
        }
        // Retire two, fetch two more: the new entries reuse the freed slots.
        w.mark_dispatched(0);
        w.mark_dispatched(1);
        w.mark_issued(0);
        w.mark_issued(1);
        w.pop_front();
        w.pop_front();
        push(&mut w, 5);
        push(&mut w, 6);
        assert_eq!(w.len(), 4);
        let seqs: Vec<u64> = (0..w.len()).map(|i| w.seq_at(i)).collect();
        assert_eq!(seqs, vec![3, 4, 5, 6]);
        assert_eq!(w.position_of_seq(5), Some(2));
        assert_eq!(w.position_of_seq(2), None);
    }

    #[test]
    fn cursors_track_dispatch_and_issue() {
        let mut w = OpWindow::new(8);
        for seq in 1..=5 {
            push(&mut w, seq);
        }
        assert_eq!(w.first_undispatched_index(), 0);
        w.mark_dispatched(0);
        w.mark_dispatched(1);
        w.mark_dispatched(2);
        assert_eq!(w.first_undispatched_index(), 3);
        // Nothing issued yet: the scan starts at the front.
        assert_eq!(w.issue_scan_start(), 0);
        // Issue out of order: 0 and 2, leaving 1 as the resume point.
        w.mark_issued(0);
        w.mark_issued(2);
        assert_eq!(w.issue_scan_start(), 1);
        // No deps in this test, so the candidate list is the unissued
        // dispatched set: just index 1.
        let mut candidates = Vec::new();
        w.collect_issue_candidates(0, &mut candidates);
        assert_eq!(candidates, vec![1]);
        w.mark_issued(1);
        assert_eq!(w.issue_scan_start(), 3);
    }

    #[test]
    fn squash_clamps_cursors() {
        let mut w = OpWindow::new(8);
        for seq in 1..=4 {
            push(&mut w, seq);
        }
        for i in 0..4 {
            w.mark_dispatched(i);
            w.mark_issued(i);
        }
        assert_eq!(w.issue_scan_start(), 4);
        w.pop_back();
        w.pop_back();
        assert_eq!(w.first_undispatched_index(), 2);
        assert_eq!(w.issue_scan_start(), 2);
        push(&mut w, 9);
        assert_eq!(w.first_undispatched_index(), 2);
        assert_eq!(w.issue_scan_start(), 2);
    }

    #[test]
    fn dep_offsets_resolve_and_probe() {
        let mut w = OpWindow::new(8);
        push(&mut w, 1);
        push(&mut w, 2);
        let op = TraceOp::int_alu(0x100).with_dep(1).with_dep(2);
        w.push_back(3, op, 14, OpFlags::default());
        w.mark_dispatched(0);
        w.mark_dispatched(1);
        w.mark_dispatched(2);
        let offsets = w.resolve_dep_offsets(2);
        assert_eq!(offsets, [1, 2]);
        w.set_src_dep_offsets(2, offsets);
        assert!(!w.deps_ready(2));
        w.flags_mut(0).set_completed(true);
        w.flags_mut(1).set_completed(true);
        assert!(w.deps_ready(2));
    }

    #[test]
    fn committed_producer_is_always_ready() {
        let mut w = OpWindow::new(8);
        push(&mut w, 1);
        w.mark_dispatched(0);
        w.mark_issued(0);
        w.flags_mut(0).set_completed(true);
        w.pop_front();
        let op = TraceOp::int_alu(0x100).with_dep(1);
        w.push_back(2, op, 14, OpFlags::default());
        w.mark_dispatched(0);
        // Producer seq 1 has committed: no in-window position, offset = NO_DEP.
        let offsets = w.resolve_dep_offsets(0);
        assert_eq!(offsets, [NO_DEP, NO_DEP]);
        w.set_src_dep_offsets(0, offsets);
        assert!(w.deps_ready(0));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut w = OpWindow::new(2);
        for seq in 1..=3 {
            push(&mut w, seq);
        }
    }
}
