//! Serializable warm simulator checkpoints.
//!
//! A checkpoint captures everything that is *warm* at a pure
//! fast-forward-from-reset boundary: trace positions, branch/LLL/MLP
//! predictors, the LLSR and its pending evaluations, the private cache/TLB/
//! prefetcher levels and the shared LLC. At that boundary every transient
//! structure is empty by construction — the cycle counter is zero, the
//! pipeline windows, completion queue, write buffer, MSHRs, bus and staged
//! fills hold nothing, and all statistics are zero — so none of it needs
//! capturing, and restoring into a freshly built simulator reproduces the
//! fast-forwarded machine bit for bit.
//!
//! Sweeps branch from one shared checkpoint: fast-forward the warm prefix
//! once, [`SmtSimulator::checkpoint`] it, then
//! [`SmtSimulator::restore_checkpoint`] into each cell's fresh simulator
//! instead of re-running the prefix.

use serde::{Deserialize, Serialize};
use smt_branch::BranchPredictorState;
use smt_mem::{CoreMemoryState, SharedLlcState};
use smt_predictors::{BinaryMlpState, LlsrState, MissPatternState, MlpDistanceState};
use smt_trace::TraceSourceState;
use smt_types::{CheckpointMeta, SimError, TraceOp};

use super::thread::PendingMlpEval;
use super::SmtSimulator;

/// A pending MLP-prediction evaluation, serialized.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct PendingEvalState {
    /// PC of the long-latency load awaiting its LLSR ground truth.
    pub pc: u64,
    /// The MLP distance predicted when the load was processed.
    pub predicted_distance: u32,
}

/// Per-thread warm state of a checkpoint.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ThreadCheckpoint {
    /// Trace-source position (benchmark name, RNG, cursors).
    pub trace: TraceSourceState,
    /// Trace ops pulled into the refill buffer but not yet consumed.
    pub pending_ops: Vec<TraceOp>,
    /// Instructions committed (functionally executed) so far.
    pub committed: u64,
    /// Branch predictor state.
    pub branch_predictor: BranchPredictorState,
    /// Long-latency load predictor state.
    pub lll_predictor: MissPatternState,
    /// MLP distance predictor state.
    pub mlp_predictor: MlpDistanceState,
    /// Binary MLP predictor state.
    pub binary_mlp_predictor: BinaryMlpState,
    /// Long-latency shift register contents.
    pub llsr: LlsrState,
    /// Predictions awaiting their LLSR ground truth, in commit order.
    pub pending_mlp_evals: Vec<PendingEvalState>,
}

/// A complete warm checkpoint of a single-core simulator.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SimCheckpoint {
    /// Identity and provenance (validated on restore).
    pub meta: CheckpointMeta,
    /// Per-thread warm state, in thread order.
    pub threads: Vec<ThreadCheckpoint>,
    /// Core-private memory levels (L1s, L2, TLBs, prefetcher).
    pub memory: CoreMemoryState,
    /// Shared last-level cache.
    pub shared: SharedLlcState,
}

impl SimCheckpoint {
    /// Checks the checkpoint's standalone invariants: a supported schema
    /// version and metadata consistent with the captured thread states.
    /// [`SmtSimulator::restore_checkpoint`] additionally validates the
    /// checkpoint against the restoring simulator's configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] describing the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.meta.schema_version != CheckpointMeta::SCHEMA_VERSION {
            // analyze: allow(hot-path-alloc) reason="error construction on the validation failure path"
            return Err(SimError::invalid_config(format!(
                "unsupported checkpoint schema version {} (expected {})",
                self.meta.schema_version,
                CheckpointMeta::SCHEMA_VERSION
            )));
        }
        if self.meta.num_threads as usize != self.threads.len() {
            // analyze: allow(hot-path-alloc) reason="error construction on the validation failure path"
            return Err(SimError::invalid_config(format!(
                "checkpoint metadata claims {} threads but {} are captured",
                self.meta.num_threads,
                self.threads.len()
            )));
        }
        if self.meta.benchmarks.len() != self.threads.len() {
            // analyze: allow(hot-path-alloc) reason="error construction on the validation failure path"
            return Err(SimError::invalid_config(format!(
                "checkpoint names {} benchmarks for {} captured threads",
                self.meta.benchmarks.len(),
                self.threads.len()
            )));
        }
        Ok(())
    }
}

impl SmtSimulator {
    /// Captures a warm checkpoint. Legal only at a pure
    /// fast-forward-from-reset boundary: the cycle counter must still be zero
    /// and the pipeline empty, so every transient structure is structurally
    /// empty and only warm state needs saving.
    ///
    /// `seed` records the workload seed the simulator was built with (the
    /// simulator itself does not know it); restore validates it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Internal`] when the simulator is not at a
    /// checkpointable boundary and [`SimError::InvalidWorkload`] when a trace
    /// source does not support checkpointing.
    pub fn checkpoint(&mut self, seed: u64) -> Result<SimCheckpoint, SimError> {
        if self.core.cycle() != 0 || !self.core.is_drained() {
            return Err(SimError::internal(
                "checkpoints may only be captured after a pure fast-forward from reset \
                 (cycle 0, empty pipeline)",
            ));
        }
        let shared = self.shared.state().map_err(SimError::internal)?;
        let mut threads = Vec::with_capacity(self.core.threads.len());
        let mut benchmarks = Vec::with_capacity(self.core.threads.len());
        let mut warmed = u64::MAX;
        for ctx in &self.core.threads {
            let trace = ctx.trace.save_state().ok_or_else(|| {
                SimError::invalid_workload(format!(
                    "trace source '{}' does not support checkpointing",
                    ctx.trace.name()
                ))
            })?;
            benchmarks.push(ctx.trace.name().to_string());
            warmed = warmed.min(ctx.committed);
            threads.push(ThreadCheckpoint {
                trace,
                pending_ops: ctx.pending_trace_ops().to_vec(),
                committed: ctx.committed,
                branch_predictor: ctx.branch_predictor.state(),
                lll_predictor: ctx.lll_predictor.state(),
                mlp_predictor: ctx.mlp_predictor.state(),
                binary_mlp_predictor: ctx.binary_mlp_predictor.state(),
                llsr: ctx.llsr.state(),
                pending_mlp_evals: ctx
                    .pending_mlp_evals
                    .iter()
                    .map(|e| PendingEvalState {
                        pc: e.pc,
                        predicted_distance: e.predicted_distance,
                    })
                    .collect(),
            });
        }
        let meta = CheckpointMeta {
            schema_version: CheckpointMeta::SCHEMA_VERSION,
            benchmarks,
            seed,
            num_threads: self.config().num_threads as u32,
            warmed_instructions: if warmed == u64::MAX { 0 } else { warmed },
        };
        Ok(SimCheckpoint {
            meta,
            threads,
            memory: self.core.mem.state(),
            shared,
        })
    }

    /// Restores a checkpoint into this simulator, which must be freshly built
    /// for the same configuration and workload (same benchmarks, same seed
    /// derivation, same geometry). After a successful restore the simulator is
    /// bit-for-bit the machine that was checkpointed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] on a schema or geometry mismatch
    /// and [`SimError::InvalidWorkload`] on a workload mismatch.
    pub fn restore_checkpoint(&mut self, ck: &SimCheckpoint) -> Result<(), SimError> {
        if ck.meta.schema_version != CheckpointMeta::SCHEMA_VERSION {
            return Err(SimError::invalid_config(format!(
                "unsupported checkpoint schema version {} (expected {})",
                ck.meta.schema_version,
                CheckpointMeta::SCHEMA_VERSION
            )));
        }
        if self.core.cycle() != 0 || !self.core.is_drained() {
            return Err(SimError::internal(
                "checkpoints may only be restored into a freshly built simulator",
            ));
        }
        let num_threads = self.config().num_threads;
        if ck.meta.num_threads as usize != num_threads || ck.threads.len() != num_threads {
            return Err(SimError::invalid_config(format!(
                "checkpoint has {} threads, simulator has {num_threads}",
                ck.threads.len()
            )));
        }
        for (ctx, t) in self.core.threads.iter_mut().zip(&ck.threads) {
            ctx.trace
                .restore_state(&t.trace)
                .map_err(SimError::invalid_workload)?;
            ctx.set_pending_trace_ops(t.pending_ops.clone());
            ctx.committed = t.committed;
            ctx.branch_predictor
                .restore_state(&t.branch_predictor)
                .map_err(SimError::invalid_config)?;
            ctx.lll_predictor
                .restore_state(&t.lll_predictor)
                .map_err(SimError::invalid_config)?;
            ctx.mlp_predictor
                .restore_state(&t.mlp_predictor)
                .map_err(SimError::invalid_config)?;
            ctx.binary_mlp_predictor
                .restore_state(&t.binary_mlp_predictor)
                .map_err(SimError::invalid_config)?;
            ctx.llsr
                .restore_state(&t.llsr)
                .map_err(SimError::invalid_config)?;
            ctx.pending_mlp_evals = t
                .pending_mlp_evals
                .iter()
                .map(|e| PendingMlpEval {
                    pc: e.pc,
                    predicted_distance: e.predicted_distance,
                })
                .collect();
        }
        self.core
            .mem
            .restore_state(&ck.memory)
            .map_err(SimError::invalid_config)?;
        self.shared
            .restore_state(&ck.shared)
            .map_err(SimError::invalid_config)?;
        Ok(())
    }
}
