//! Issue phase: pick ready instructions per thread (bitmap candidate scan),
//! perform memory accesses, schedule completion events, and hand
//! long-latency-load detections to the fetch policy.

use std::cmp::Reverse;

use smt_mem::{AccessLevel, SharedLevel};
use smt_predictors::LongLatencyPredictor;
use smt_types::{OpKind, SeqNum, ThreadId};

use super::writeback_phase::CompletionEvent;
use super::Core;

impl Core {
    pub(super) fn issue_phase<S: SharedLevel>(&mut self, shared: &mut S) {
        let cycle = self.cycle;
        let mut remaining = self.config.issue_width;
        let mut int_units = self.config.int_alus;
        let mut ldst_units = self.config.ldst_units;
        let mut fp_units = self.config.fp_units;
        let num_threads = self.threads.len();
        let mut flushes = std::mem::take(&mut self.flushes);
        flushes.clear();

        for offset in 0..num_threads {
            if remaining == 0 {
                break;
            }
            let ti = (self.rotate + offset) % num_threads;
            let thread_id = ThreadId::new(ti);
            // Resume after the settled prefix of already-issued instructions,
            // then gather this thread's ready-to-issue candidates in one tight
            // bitmap pass instead of rescanning the (mostly issued, mostly
            // blocked) window entry by entry.
            let start = self.threads[ti].window.issue_scan_start();
            let mut candidates = std::mem::take(&mut self.issue_candidates);
            candidates.clear();
            self.threads[ti]
                .window
                .collect_issue_candidates(start, &mut candidates);
            let mut candidate_pos = 0;
            while remaining > 0 && candidate_pos < candidates.len() {
                let idx = candidates[candidate_pos] as usize;
                candidate_pos += 1;
                let (seq, op, predicted_lll) = {
                    let window = &self.threads[ti].window;
                    let flags = window.flags_at(idx);
                    (window.seq_at(idx), window.op_at(idx), flags.predicted_lll())
                };
                // Functional-unit availability.
                let unit = match op.kind {
                    OpKind::Load | OpKind::Store => &mut ldst_units,
                    k if k.is_fp() => &mut fp_units,
                    _ => &mut int_units,
                };
                if *unit == 0 {
                    continue;
                }
                *unit -= 1;
                remaining -= 1;

                let mut done_at = cycle + op.kind.exec_latency();
                let mut detected_lll = false;
                let mut l1_missed = false;
                let mut detection_distance = 0;
                let mut detection_has_mlp = false;

                if op.kind == OpKind::Load {
                    let addr = op.addr().unwrap_or(0);
                    let access = self.mem.load_access(shared, thread_id, op.pc, addr, cycle);
                    done_at = access.completion_cycle().max(cycle + 1);
                    l1_missed = access.l1_miss;
                    let tstats = self.stats.thread_mut(thread_id);
                    if access.l1_miss {
                        tstats.l1d_load_misses += 1;
                    }
                    if access.l2_miss {
                        tstats.l2_load_misses += 1;
                    }
                    if access.level == AccessLevel::Memory {
                        tstats.l3_load_misses += 1;
                    }
                    if access.dtlb_miss {
                        tstats.dtlb_misses += 1;
                    }
                    if access.prefetch_hit {
                        tstats.prefetch_hits += 1;
                    }
                    // Score and train the long-latency load predictor (Figure 6).
                    tstats.lll_pred_total += 1;
                    if predicted_lll == access.long_latency {
                        tstats.lll_pred_correct += 1;
                    }
                    if access.long_latency {
                        tstats.lll_pred_miss_total += 1;
                        if predicted_lll {
                            tstats.lll_pred_miss_correct += 1;
                        }
                        tstats.long_latency_loads += 1;
                        detected_lll = true;
                    }
                    let ctx = &mut self.threads[ti];
                    ctx.lll_predictor.update(op.pc, access.long_latency);
                    if access.long_latency {
                        detection_distance = ctx.mlp_predictor.predict(op.pc);
                        detection_has_mlp = ctx.binary_mlp_predictor.predict(op.pc);
                        ctx.outstanding_lll.insert(seq, cycle);
                        self.stats
                            .thread_mut(thread_id)
                            .record_mlp_distance(detection_distance);
                    }
                    if access.l1_miss {
                        ctx.outstanding_l1d += 1;
                    }
                } else if op.kind == OpKind::Store {
                    done_at = cycle + 1;
                }

                {
                    let ctx = &mut self.threads[ti];
                    ctx.window.mark_issued(idx);
                    let flags = ctx.window.flags_mut(idx);
                    flags.set_l1_missed(l1_missed);
                    if detected_lll {
                        flags.set_is_long_latency(true);
                        flags.set_predicted_has_mlp(detection_has_mlp);
                    }
                    let uses_fp_iq = flags.uses_fp_iq();
                    ctx.window.set_done_at(idx, done_at);
                    if detected_lll {
                        ctx.window
                            .set_predicted_mlp_distance(idx, detection_distance);
                    }
                    if uses_fp_iq {
                        ctx.occ.iq_fp -= 1;
                        self.totals.iq_fp -= 1;
                    } else {
                        ctx.occ.iq_int -= 1;
                        self.totals.iq_int -= 1;
                    }
                    ctx.occ.icount -= 1;
                    self.completions.push(Reverse(CompletionEvent {
                        done_at,
                        thread: ti as u32,
                        seq,
                    }));
                }

                if op.kind == OpKind::Load {
                    let latest = SeqNum(self.threads[ti].latest_fetched_seq);
                    if detected_lll {
                        if let Some(req) = self.policy.on_long_latency_detected(
                            thread_id,
                            op.pc,
                            SeqNum(seq),
                            latest,
                            detection_distance,
                            detection_has_mlp,
                        ) {
                            flushes.push(req);
                        }
                    } else {
                        self.policy
                            .on_load_executed_hit(thread_id, op.pc, SeqNum(seq));
                    }
                }
            }
            self.issue_candidates = candidates;
        }

        for req in flushes.drain(..) {
            self.apply_flush(req);
        }
        self.flushes = flushes;
    }
}
