//! Functional fast-forward: consume the trace and keep the warm state hot —
//! caches, TLBs, stream buffers, branch predictor, LLL/MLP predictors and the
//! LLSR — with no cycle accounting, no window occupancy and no statistics.
//!
//! This is the SMARTS-style "functional warming" phase of sampled simulation
//! (see [`super::SmtSimulator::run_sampled`]): between detailed measurement
//! windows the machine advances at trace speed, paying only the state updates
//! a committed instruction would have made. The per-instruction protocol
//! replicates the detailed pipeline's warm-state effects exactly:
//!
//! * **branches** — predict then train once per dynamic branch, at the same
//!   global-history point, exactly as the fetch phase does on first fetch
//!   (re-fetches replay the recorded outcome and skip the predictor);
//! * **loads** — the functional memory walk ([`smt_mem::CoreMemory::warm_load`])
//!   performs the TLB installs, fills and stream-buffer transitions of a real
//!   access and yields the paper's long-latency classification, which trains
//!   the LLL predictor and (for long-latency loads) enqueues an MLP-prediction
//!   evaluation exactly as issue + commit would;
//! * **stores** — the (already timing-free) functional store walk;
//! * **every op** — shifts through the LLSR; produced observations train the
//!   MLP distance/binary predictors and retire the matching pending
//!   evaluation, keeping the two FIFOs aligned across mode switches.
//!
//! Statistics are deliberately untouched here: the `sampling-discipline`
//! analyze rule pins that fast-forward code never reaches a statistics
//! counter.

use smt_mem::SharedLevel;
use smt_predictors::LongLatencyPredictor;
use smt_types::{OpKind, ThreadId};

use super::thread::PendingMlpEval;
use super::{Core, SmtSimulator};

impl Core {
    /// Whether the pipeline holds no in-flight work: all windows empty, no
    /// pending completion events, and the write buffer fully drained. Only a
    /// drained pipeline may fast-forward — otherwise in-flight instructions
    /// would later retire *behind* trace ops the fast-forward already
    /// consumed, reordering the LLSR commit stream.
    pub(crate) fn is_drained(&mut self) -> bool {
        let now = self.cycle;
        self.completions.is_empty()
            && self.write_buffer.occupancy(now) == 0
            && self.threads.iter().all(|t| t.window.is_empty())
    }

    /// Functionally advances every active thread by `instructions`
    /// instructions against the given shared level, interleaving threads one
    /// instruction at a time (the same fairness detailed stepping gives
    /// threads that share the private cache levels).
    ///
    /// The core's cycle counter does not move; `self.cycle` only stamps
    /// stream-buffer availability, frozen at the current value.
    pub(crate) fn fast_forward_against<S: SharedLevel>(
        &mut self,
        shared: &mut S,
        instructions: u64,
    ) {
        debug_assert!(
            self.is_drained(),
            "fast-forward requires a drained pipeline"
        );
        let now = self.cycle;
        for _ in 0..instructions {
            for ti in 0..self.threads.len() {
                if !self.threads[ti].active {
                    continue;
                }
                let thread_id = ThreadId::new(ti);
                let ctx = &mut self.threads[ti];
                let (op, replay) = ctx.pull_op();
                ctx.committed += 1;
                let mut is_lll_load = false;
                match op.kind {
                    OpKind::Branch => {
                        // First sight of this dynamic branch: predict and
                        // train at the same global-history point. Replays of
                        // squashed instructions already trained the predictor.
                        if let (None, Some(info)) = (replay, op.branch) {
                            let pred = ctx.branch_predictor.predict(op.pc);
                            ctx.branch_predictor
                                .update(op.pc, info.taken, info.target, pred);
                        }
                    }
                    OpKind::Load => {
                        let addr = op.addr().unwrap_or(0);
                        let long = self.mem.warm_load(shared, thread_id, op.pc, addr, now);
                        ctx.lll_predictor.update(op.pc, long);
                        if long {
                            is_lll_load = true;
                            ctx.pending_mlp_evals.push_back(PendingMlpEval {
                                pc: op.pc,
                                predicted_distance: ctx.mlp_predictor.predict(op.pc),
                            });
                        }
                    }
                    OpKind::Store => {
                        if let Some(addr) = op.addr() {
                            self.mem.warm_store(shared, thread_id, addr);
                        }
                    }
                    _ => {}
                }
                if let Some(obs) = ctx.llsr.commit(op.pc, is_lll_load) {
                    ctx.mlp_predictor.update(obs.pc, obs.mlp_distance);
                    ctx.binary_mlp_predictor
                        .update(obs.pc, obs.mlp_distance > 0);
                    if let Some(eval) = ctx.pending_mlp_evals.pop_front() {
                        debug_assert_eq!(eval.pc, obs.pc, "LLSR and prediction FIFOs diverged");
                    }
                }
            }
        }
    }
}

impl Core {
    /// Advances every active thread by `instructions` instructions at raw
    /// trace speed: ops are pulled and discarded, committed-instruction
    /// counters advance, and *nothing else* is touched — no caches, TLBs,
    /// predictors or LLSR, no cycles, no statistics.
    ///
    /// This is the skip phase of a `skip → ff → warm → measure` sampling
    /// unit: warm state is frozen (not lost) across the skip and gets a fresh
    /// functional-warming horizon before the next window. Several times
    /// cheaper per instruction than [`Core::fast_forward_against`].
    pub(crate) fn skip_forward(&mut self, instructions: u64) {
        debug_assert!(
            self.is_drained(),
            "skip-forward requires a drained pipeline"
        );
        // Threads consume independent streams and nothing but per-thread
        // cursors move, so the old one-instruction-round-robin interleaving
        // and this per-thread bulk skip are observationally identical — and
        // the bulk form lets seekable sources (`FileTraceSource`) take their
        // O(1) `skip` instead of decoding every skipped op.
        for ctx in self.threads.iter_mut().filter(|t| t.active) {
            ctx.skip_ops(instructions);
            ctx.committed += instructions;
        }
    }
}

impl SmtSimulator {
    /// Functionally fast-forwards every thread by `instructions_per_thread`
    /// instructions: the trace is consumed and all warm state (caches, TLBs,
    /// stream buffers, branch/LLL/MLP predictors, LLSR) advances, but no
    /// cycles elapse and no statistics change.
    ///
    /// # Panics
    ///
    /// Debug builds assert the pipeline is drained (no in-flight
    /// instructions); call it on a fresh simulator or after the sampled loop's
    /// drain.
    pub fn fast_forward(&mut self, instructions_per_thread: u64) {
        self.core
            .fast_forward_against(&mut self.shared, instructions_per_thread);
    }

    /// Skips every thread ahead by `instructions_per_thread` instructions at
    /// raw trace speed without updating any warm state: ops are pulled and
    /// discarded, committed-instruction counters advance, and nothing else is
    /// touched — no caches, TLBs, predictors or LLSR, no cycles, no
    /// statistics.
    ///
    /// # Panics
    ///
    /// Debug builds assert the pipeline is drained, as for
    /// [`SmtSimulator::fast_forward`].
    pub fn skip_forward(&mut self, instructions_per_thread: u64) {
        self.core.skip_forward(instructions_per_thread);
    }
}
