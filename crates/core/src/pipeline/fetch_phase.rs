//! Fetch phase: ask the fetch policy for this cycle's thread priority,
//! account gated cycles, and pull instructions (fresh or re-fetched) into the
//! front end, predicting branches exactly once per dynamic branch.

use smt_types::{OpFlags, OpKind, SeqNum, SmtSnapshot, ThreadId};

use super::Core;

impl Core {
    pub(super) fn fetch_phase(&mut self, snapshot: &SmtSnapshot) {
        if self.fetch_frozen {
            // The sampled loop is draining in-flight work before a
            // fast-forward phase: nothing enters the pipeline.
            return;
        }
        let cycle = self.cycle;
        let mut priority = std::mem::take(&mut self.priority);
        self.policy.fetch_priority(snapshot, &mut priority);
        // Account gated cycles for active threads the policy excluded, via a
        // "selected" bitmask filled in one pass over the priority list
        // (MAX_THREADS <= 64) instead of an O(threads) scan per thread.
        let mut selected: u64 = 0;
        for t in &priority {
            selected |= 1 << t.index();
        }
        for ti in 0..self.threads.len() {
            if self.threads[ti].active && selected & (1 << ti) == 0 {
                self.stats.thread_mut(ThreadId::new(ti)).fetch_gated_cycles += 1;
            }
        }
        let mut budget = self.config.fetch_width;
        let mut threads_used = 0;
        let frontend_ready_at = cycle + self.config.frontend_depth as u64;
        for &t in &priority {
            if budget == 0 || threads_used >= self.config.fetch_threads_per_cycle {
                break;
            }
            let ti = t.index();
            if !self.threads[ti].active {
                continue;
            }
            if self.threads[ti].occ.frontend >= self.frontend_capacity {
                continue;
            }
            let mut fetched_here = 0;
            while budget > 0
                && fetched_here < self.config.fetch_width
                && self.threads[ti].occ.frontend < self.frontend_capacity
            {
                let ctx = &mut self.threads[ti];
                let (op, replay) = ctx.pull_op();
                let seq = ctx.next_seq;
                ctx.next_seq += 1;
                ctx.latest_fetched_seq = seq;
                let mut mispredicted = false;
                let mut predicted_taken = false;
                if let Some(entry) = replay {
                    // Re-fetch of a squashed instruction: replay the original
                    // prediction outcome; the predictor was already trained.
                    mispredicted = entry.mispredicted;
                    predicted_taken = entry.predicted_taken;
                } else if let (OpKind::Branch, Some(info)) = (op.kind, op.branch) {
                    // First fetch of this dynamic branch: predict and train at the
                    // same global-history point, exactly once per dynamic branch.
                    let pred = ctx.branch_predictor.predict(op.pc);
                    mispredicted =
                        ctx.branch_predictor
                            .update(op.pc, info.taken, info.target, pred);
                    predicted_taken = pred.taken;
                }
                let mut flags = OpFlags::default();
                flags.set_mispredicted(mispredicted);
                flags.set_predicted_taken(predicted_taken);
                ctx.window.push_back(seq, op, frontend_ready_at, flags);
                ctx.occ.frontend += 1;
                ctx.occ.icount += 1;
                self.stats.thread_mut(t).fetched_instructions += 1;
                self.policy.on_fetch(t, SeqNum(seq));
                budget -= 1;
                fetched_here += 1;
                if predicted_taken {
                    // The fetch group ends at a predicted-taken branch.
                    break;
                }
            }
            if fetched_here > 0 {
                threads_used += 1;
            }
        }
        self.priority = priority;
    }
}
