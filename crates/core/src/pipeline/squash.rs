//! Squash machinery: remove the youngest instructions of a thread (after a
//! branch misprediction or a fetch-policy flush) and queue them for re-fetch
//! in program order.

use smt_fetch::FlushRequest;
use smt_types::{SeqNum, ThreadId};

use super::thread::RefetchEntry;
use super::Core;

/// Why a range of instructions was squashed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(super) enum SquashCause {
    BranchMisprediction,
    PolicyFlush,
}

impl Core {
    pub(super) fn apply_flush(&mut self, request: FlushRequest) {
        let ti = request.thread.index();
        if ti >= self.threads.len() {
            return;
        }
        let squashed = self.squash(ti, request.keep_up_to.0, SquashCause::PolicyFlush);
        if squashed > 0 {
            self.stats.thread_mut(request.thread).policy_flushes += 1;
        }
    }

    /// Removes every instruction of thread `ti` with a sequence number greater than
    /// `keep_up_to`, returning how many were squashed. Squashed operations are
    /// queued for re-fetch in program order.
    pub(super) fn squash(&mut self, ti: usize, keep_up_to: u64, cause: SquashCause) -> u64 {
        let thread_id = ThreadId::new(ti);
        let mut squashed = 0;
        {
            let ctx = &mut self.threads[ti];
            while !ctx.window.is_empty() {
                let last = ctx.window.len() - 1;
                let seq = ctx.window.seq_at(last);
                if seq <= keep_up_to {
                    break;
                }
                let flags = ctx.window.flags_at(last);
                let op = ctx.window.op_at(last);
                ctx.window.pop_back();
                if flags.dispatched() {
                    ctx.occ.rob -= 1;
                    self.totals.rob -= 1;
                    if flags.uses_lsq() {
                        ctx.occ.lsq -= 1;
                        self.totals.lsq -= 1;
                    }
                    if !flags.issued() {
                        if flags.uses_fp_iq() {
                            ctx.occ.iq_fp -= 1;
                            self.totals.iq_fp -= 1;
                        } else {
                            ctx.occ.iq_int -= 1;
                            self.totals.iq_int -= 1;
                        }
                        ctx.occ.icount -= 1;
                    }
                    if flags.has_dest() {
                        if flags.dest_fp() {
                            ctx.occ.rename_fp -= 1;
                            self.totals.rename_fp -= 1;
                        } else {
                            ctx.occ.rename_int -= 1;
                            self.totals.rename_int -= 1;
                        }
                    }
                    if flags.issued() && !flags.completed() {
                        if flags.is_long_latency() {
                            ctx.outstanding_lll.remove(seq);
                        }
                        if flags.l1_missed() && ctx.outstanding_l1d > 0 {
                            ctx.outstanding_l1d -= 1;
                        }
                    }
                } else {
                    ctx.occ.frontend -= 1;
                    ctx.occ.icount -= 1;
                }
                ctx.refetch.push_front(RefetchEntry {
                    op,
                    mispredicted: flags.mispredicted(),
                    predicted_taken: flags.predicted_taken(),
                });
                squashed += 1;
            }
            ctx.latest_fetched_seq = ctx.latest_fetched_seq.min(keep_up_to);
        }
        if squashed > 0 {
            let tstats = self.stats.thread_mut(thread_id);
            match cause {
                SquashCause::BranchMisprediction => tstats.squashed_by_branch += squashed,
                SquashCause::PolicyFlush => tstats.squashed_by_policy += squashed,
            }
            self.policy.on_squash(thread_id, SeqNum(keep_up_to));
        }
        squashed
    }
}
