//! Commit phase: retire completed instructions in program order, drain
//! stores into the write buffer, and feed the LLSR / MLP-predictor training
//! pipeline at window exit.

use smt_mem::SharedLevel;
use smt_types::{OpKind, ThreadId};

use super::thread::PendingMlpEval;
use super::Core;

impl Core {
    pub(super) fn commit_phase<S: SharedLevel>(&mut self, shared: &mut S) {
        let cycle = self.cycle;
        let commit_width = self.config.commit_width;
        for ti in 0..self.threads.len() {
            let mut done = 0;
            while done < commit_width {
                let ctx = &mut self.threads[ti];
                if ctx.window.is_empty() {
                    break;
                }
                let flags = ctx.window.flags_at(0);
                if !flags.commit_ready() {
                    break;
                }
                let op = ctx.window.op_at(0);
                if op.kind == OpKind::Store && !self.write_buffer.try_push(cycle) {
                    // Commit blocks when the write buffer is full (Section 5).
                    break;
                }
                let predicted_mlp_distance = ctx.window.predicted_mlp_distance_at(0);
                ctx.window.pop_front();
                ctx.occ.rob -= 1;
                self.totals.rob -= 1;
                if flags.uses_lsq() {
                    ctx.occ.lsq -= 1;
                    self.totals.lsq -= 1;
                }
                if flags.has_dest() {
                    if flags.dest_fp() {
                        ctx.occ.rename_fp -= 1;
                        self.totals.rename_fp -= 1;
                    } else {
                        ctx.occ.rename_int -= 1;
                        self.totals.rename_int -= 1;
                    }
                }
                ctx.committed += 1;
                let thread_id = ThreadId::new(ti);
                if op.kind == OpKind::Store {
                    if let Some(addr) = op.addr() {
                        self.mem.store_access(shared, thread_id, addr, cycle);
                    }
                }
                let tstats = self.stats.thread_mut(thread_id);
                tstats.committed_instructions += 1;
                match op.kind {
                    OpKind::Load => tstats.loads += 1,
                    OpKind::Store => tstats.stores += 1,
                    OpKind::Branch => tstats.branches += 1,
                    _ => {}
                }
                // Feed the LLSR and, when a long-latency load leaves the window,
                // train the MLP predictors and score the earlier prediction.
                let is_lll_load = flags.is_long_latency() && op.kind == OpKind::Load;
                if is_lll_load {
                    ctx.pending_mlp_evals.push_back(PendingMlpEval {
                        pc: op.pc,
                        predicted_distance: predicted_mlp_distance,
                    });
                }
                if let Some(obs) = ctx.llsr.commit(op.pc, is_lll_load) {
                    ctx.mlp_predictor.update(obs.pc, obs.mlp_distance);
                    ctx.binary_mlp_predictor
                        .update(obs.pc, obs.mlp_distance > 0);
                    if let Some(eval) = ctx.pending_mlp_evals.pop_front() {
                        debug_assert_eq!(eval.pc, obs.pc, "LLSR and prediction FIFOs diverged");
                        let tstats = self.stats.thread_mut(thread_id);
                        let predicted_mlp = eval.predicted_distance > 0;
                        let actual_mlp = obs.mlp_distance > 0;
                        match (predicted_mlp, actual_mlp) {
                            (true, true) => tstats.mlp_pred_true_positive += 1,
                            (false, false) => tstats.mlp_pred_true_negative += 1,
                            (true, false) => tstats.mlp_pred_false_positive += 1,
                            (false, true) => tstats.mlp_pred_false_negative += 1,
                        }
                        tstats.mlp_distance_total += 1;
                        if eval.predicted_distance >= obs.mlp_distance {
                            tstats.mlp_distance_far_enough += 1;
                        }
                    }
                }
                done += 1;
            }
        }
    }
}
