//! Event-driven writeback: completion events pop from a min-heap instead of
//! the whole window being rescanned each cycle.

use std::cmp::Reverse;

use smt_types::{OpKind, SeqNum, ThreadId};

use super::squash::SquashCause;
use super::Core;

/// A scheduled execution-completion: instruction `seq` of `thread` finishes at
/// `done_at`. Events are popped from a min-heap when their cycle arrives;
/// events whose instruction was squashed in the meantime no longer match any
/// window entry (squashed instructions are re-fetched under fresh sequence
/// numbers) and are discarded on pop.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub(super) struct CompletionEvent {
    pub(super) done_at: u64,
    pub(super) thread: u32,
    pub(super) seq: u64,
}

impl Core {
    /// Event-driven writeback: instead of rescanning every window entry each
    /// cycle, pop the completion events that are due from the min-heap. Events
    /// whose instruction was squashed while in flight find no matching sequence
    /// number (squashed instructions are re-fetched under fresh numbers) and
    /// are dropped.
    pub(super) fn writeback_phase(&mut self) {
        let cycle = self.cycle;
        self.mispredicts.fill(None);
        while let Some(&Reverse(event)) = self.completions.peek() {
            if event.done_at > cycle {
                break;
            }
            self.completions.pop();
            let ti = event.thread as usize;
            let ctx = &mut self.threads[ti];
            let Some(idx) = ctx.window.position_of_seq(event.seq) else {
                // Stale event: the instruction was squashed after issuing.
                continue;
            };
            let flags = ctx.window.flags_at(idx);
            debug_assert!(
                flags.issued() && !flags.completed() && ctx.window.done_at(idx) == event.done_at
            );
            ctx.window.flags_mut(idx).set_completed(true);
            let seq = event.seq;
            let was_lll = flags.is_long_latency();
            let was_l1_miss = flags.l1_missed();
            let mispredicted_branch =
                ctx.window.op_at(idx).kind == OpKind::Branch && flags.mispredicted();
            if was_l1_miss && ctx.outstanding_l1d > 0 {
                ctx.outstanding_l1d -= 1;
            }
            if was_lll && ctx.outstanding_lll.remove(seq) {
                self.policy
                    .on_long_latency_resolved(ThreadId::new(ti), SeqNum(seq));
            }
            if mispredicted_branch {
                let oldest = &mut self.mispredicts[ti];
                *oldest = Some(oldest.map_or(seq, |s: u64| s.min(seq)));
            }
        }
        for ti in 0..self.threads.len() {
            if let Some(seq) = self.mispredicts[ti] {
                self.stats
                    .thread_mut(ThreadId::new(ti))
                    .branch_mispredictions += 1;
                self.squash(ti, seq, SquashCause::BranchMisprediction);
            }
        }
    }
}
