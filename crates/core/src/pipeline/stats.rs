//! Per-cycle accounting: the incrementally maintained shared-resource
//! occupancy totals, the start-of-cycle snapshot refresh handed to fetch
//! policies, and the MLP cycle accounting.

use smt_types::{SmtSnapshot, ThreadId};

use super::Core;

/// Machine-level occupancy of the shared buffer resources, maintained
/// incrementally at every allocate/release instead of being recomputed from the
/// per-thread counters each cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub(super) struct SharedTotals {
    pub(super) rob: u32,
    pub(super) lsq: u32,
    pub(super) iq_int: u32,
    pub(super) iq_fp: u32,
    pub(super) rename_int: u32,
    pub(super) rename_fp: u32,
}

impl Core {
    /// Rewrites the reused snapshot buffer in place with the start-of-cycle
    /// machine state (no allocation in steady state).
    pub(super) fn refresh_snapshot(&self, snap: &mut SmtSnapshot) {
        snap.begin_cycle(self.cycle);
        snap.rob_total_occupancy = self.totals.rob;
        snap.lsq_total_occupancy = self.totals.lsq;
        snap.iq_int_total_occupancy = self.totals.iq_int;
        snap.iq_fp_total_occupancy = self.totals.iq_fp;
        snap.rename_int_total_used = self.totals.rename_int;
        snap.rename_fp_total_used = self.totals.rename_fp;
        for (i, ctx) in self.threads.iter().enumerate() {
            let t = &mut snap.threads[i];
            t.active = ctx.active;
            t.icount = ctx.occ.icount;
            t.rob_occupancy = ctx.occ.rob;
            t.lsq_occupancy = ctx.occ.lsq;
            t.iq_int_occupancy = ctx.occ.iq_int;
            t.iq_fp_occupancy = ctx.occ.iq_fp;
            t.rename_int_used = ctx.occ.rename_int;
            t.rename_fp_used = ctx.occ.rename_fp;
            t.outstanding_long_latency_loads = ctx.outstanding_lll.len() as u32;
            t.outstanding_l1d_misses = ctx.outstanding_l1d;
            t.oldest_lll_cycle = ctx.oldest_lll_cycle();
        }
    }

    /// Verifies (in debug builds) that the incremental shared-resource totals
    /// agree with a from-scratch recomputation over the per-thread counters,
    /// and that the window cursors agree with the occupancy counters.
    #[cfg(debug_assertions)]
    pub(super) fn debug_check_totals(&self) {
        let mut expect = SharedTotals::default();
        for ctx in &self.threads {
            expect.rob += ctx.occ.rob;
            expect.lsq += ctx.occ.lsq;
            expect.iq_int += ctx.occ.iq_int;
            expect.iq_fp += ctx.occ.iq_fp;
            expect.rename_int += ctx.occ.rename_int;
            expect.rename_fp += ctx.occ.rename_fp;
            debug_assert_eq!(
                ctx.window.first_undispatched_index(),
                ctx.window.len() - ctx.occ.frontend as usize,
                "dispatch cursor drifted from front-end occupancy"
            );
        }
        debug_assert_eq!(self.totals, expect, "incremental occupancy totals drifted");
    }

    pub(super) fn account_mlp(&mut self) {
        for ti in 0..self.threads.len() {
            let outstanding = self.threads[ti].outstanding_lll.len() as u64;
            if outstanding > 0 {
                let tstats = self.stats.thread_mut(ThreadId::new(ti));
                tstats.mlp_cycles += 1;
                tstats.mlp_outstanding_sum += outstanding;
            }
        }
    }
}
