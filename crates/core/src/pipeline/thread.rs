//! Per-thread pipeline state.

use std::collections::{HashMap, VecDeque};

use smt_branch::BranchPredictor;
use smt_predictors::{
    BinaryMlpPredictor, Llsr, LongLatencyPredictor, MissPatternPredictor, MlpDistancePredictor,
};
use smt_trace::TraceSource;
use smt_types::{SmtConfig, TraceOp};

/// One instruction in flight, from fetch to commit.
#[derive(Clone, Debug)]
pub(crate) struct InFlight {
    /// Per-thread dynamic sequence number (re-fetched instructions get new numbers).
    pub seq: u64,
    /// The trace operation.
    pub op: TraceOp,
    /// Cycle at which the instruction has traversed the front end and may dispatch.
    pub frontend_ready_at: u64,
    /// Whether the instruction has been renamed/dispatched into the backend.
    pub dispatched: bool,
    /// Whether the instruction has issued to a functional unit.
    pub issued: bool,
    /// Whether execution has completed (result available).
    pub completed: bool,
    /// Cycle at which execution completes (valid once issued).
    pub done_at: u64,
    /// Whether the instruction occupies the floating-point issue queue.
    pub uses_fp_iq: bool,
    /// Whether the instruction occupies a load/store queue entry.
    pub uses_lsq: bool,
    /// Whether the instruction allocates a rename register (and of which class).
    pub has_dest: bool,
    /// Destination register class is floating point.
    pub dest_fp: bool,
    /// Front-end long-latency prediction (loads only).
    pub predicted_lll: bool,
    /// Front-end / detection-time MLP distance prediction.
    pub predicted_mlp_distance: u32,
    /// Binary MLP prediction.
    pub predicted_has_mlp: bool,
    /// Whether the load was detected to be long latency at execute.
    pub is_long_latency: bool,
    /// Whether the load missed in the L1 data cache (DCRA's signal).
    pub l1_missed: bool,
    /// Whether the branch was mispredicted (squash + redirect at completion).
    pub mispredicted: bool,
    /// Whether the branch was predicted taken at fetch (ends the fetch group).
    pub predicted_taken: bool,
    /// Producer positions of the source operands, resolved once at dispatch, as
    /// backward window-slot distances from this instruction. Only front pops
    /// (commit) and suffix pops (squash) mutate the window, so the distance to a
    /// live producer never changes; once the producer commits, the distance
    /// exceeds this instruction's index and the operand is known ready. `None`
    /// means no in-window producer at dispatch time.
    pub src_dep_offsets: [Option<u32>; 2],
}

impl InFlight {
    /// Sequence numbers of the producers of this instruction's source operands
    /// (`None` when the operand has no in-window producer).
    pub fn src_dep_seqs(&self) -> [Option<u64>; 2] {
        let mut out = [None, None];
        for (i, dep) in self.op.src_deps.iter().enumerate() {
            if let Some(distance) = dep {
                let d = *distance as u64;
                if d < self.seq {
                    out[i] = Some(self.seq - d);
                }
            }
        }
        out
    }
}

/// Occupancy counters for one thread (shared-resource accounting is the sum over
/// threads).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Occupancy {
    pub rob: u32,
    pub lsq: u32,
    pub iq_int: u32,
    pub iq_fp: u32,
    pub rename_int: u32,
    pub rename_fp: u32,
    /// ICOUNT contribution: instructions fetched but not yet issued.
    pub icount: u32,
    /// Instructions fetched but not yet dispatched (front-end buffer occupancy).
    pub frontend: u32,
}

/// A pending MLP-prediction evaluation: the prediction made when the load executed,
/// waiting for the LLSR to produce the actual MLP distance at window exit.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PendingMlpEval {
    pub pc: u64,
    pub predicted_distance: u32,
}

/// A squashed instruction waiting to be re-fetched, together with the branch
/// prediction outcome recorded at its first fetch (re-fetches replay that outcome
/// instead of re-querying the predictor, so the predictor sees every dynamic
/// branch exactly once, in trace order).
#[derive(Clone, Copy, Debug)]
pub(crate) struct RefetchEntry {
    pub op: TraceOp,
    pub mispredicted: bool,
    pub predicted_taken: bool,
}

/// All per-thread pipeline state.
pub(crate) struct ThreadContext {
    /// The workload being executed.
    pub trace: Box<dyn TraceSource>,
    /// Instructions squashed from the pipeline that must be re-fetched, in order.
    pub refetch: VecDeque<RefetchEntry>,
    /// In-flight instructions in program order (front-end buffer + ROB).
    pub window: VecDeque<InFlight>,
    /// Next sequence number to assign at fetch.
    pub next_seq: u64,
    /// Youngest sequence number fetched so far.
    pub latest_fetched_seq: u64,
    /// Occupancy counters.
    pub occ: Occupancy,
    /// Committed instruction count.
    pub committed: u64,
    /// Outstanding long-latency loads: seq -> cycle at which the miss was detected.
    pub outstanding_lll: HashMap<u64, u64>,
    /// Outstanding L1 data-cache misses (count), the DCRA memory-intensity signal.
    pub outstanding_l1d: u32,
    /// Per-thread branch predictor.
    pub branch_predictor: BranchPredictor,
    /// Long-latency load predictor (miss pattern predictor).
    pub lll_predictor: MissPatternPredictor,
    /// MLP distance predictor.
    pub mlp_predictor: MlpDistancePredictor,
    /// Binary MLP predictor (Section 6.5 alternatives).
    pub binary_mlp_predictor: BinaryMlpPredictor,
    /// Long-latency shift register observing the commit stream.
    pub llsr: Llsr,
    /// Predictions awaiting their LLSR ground truth, in commit order.
    pub pending_mlp_evals: VecDeque<PendingMlpEval>,
    /// Whether the thread is still running (has not reached its instruction budget).
    pub active: bool,
}

impl ThreadContext {
    /// Creates the per-thread state for `config`, pulling instructions from `trace`.
    pub fn new(config: &SmtConfig, trace: Box<dyn TraceSource>) -> Self {
        ThreadContext {
            trace,
            refetch: VecDeque::new(),
            window: VecDeque::new(),
            next_seq: 1,
            latest_fetched_seq: 0,
            occ: Occupancy::default(),
            committed: 0,
            outstanding_lll: HashMap::new(),
            outstanding_l1d: 0,
            branch_predictor: BranchPredictor::new(
                config.gshare_entries,
                config.btb_entries,
                config.btb_assoc,
            ),
            lll_predictor: MissPatternPredictor::new(config.lll_predictor_entries),
            mlp_predictor: MlpDistancePredictor::new(
                config.mlp_predictor_entries,
                config.llsr_length(),
            ),
            binary_mlp_predictor: BinaryMlpPredictor::new(config.mlp_predictor_entries),
            llsr: Llsr::new(config.llsr_length() as usize),
            pending_mlp_evals: VecDeque::new(),
            active: true,
        }
    }

    /// Next instruction to fetch: a previously squashed instruction (with its
    /// recorded branch-prediction outcome) if any, otherwise a fresh one from the
    /// trace.
    pub fn pull_op(&mut self) -> (TraceOp, Option<RefetchEntry>) {
        if let Some(entry) = self.refetch.pop_front() {
            (entry.op, Some(entry))
        } else {
            (self.trace.next_op(), None)
        }
    }

    /// Cycle at which the oldest currently outstanding long-latency load was
    /// detected (for the COT rule).
    pub fn oldest_lll_cycle(&self) -> Option<u64> {
        self.outstanding_lll.values().copied().min()
    }

    /// The predictor front end consults for a load: returns
    /// `(predicted_long_latency, predicted_mlp_distance, predicted_has_mlp)`.
    pub fn predict_load(&mut self, pc: u64) -> (bool, u32, bool) {
        let lll = self.lll_predictor.predict(pc);
        let distance = self.mlp_predictor.predict(pc);
        let has_mlp = self.binary_mlp_predictor.predict(pc);
        (lll, distance, has_mlp)
    }
}
