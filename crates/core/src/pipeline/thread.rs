//! Per-thread pipeline state.

use std::collections::VecDeque;

use smt_branch::BranchPredictor;
use smt_predictors::{
    BinaryMlpPredictor, Llsr, LongLatencyPredictor, MissPatternPredictor, MlpDistancePredictor,
};
use smt_trace::TraceSource;
use smt_types::{SmtConfig, TraceOp};

use super::window::OpWindow;

/// How many trace operations one [`TraceSource::refill`] call pulls. The batch
/// amortizes the `Box<dyn TraceSource>` virtual call over ~64 fetched
/// instructions instead of paying it once per op.
pub(crate) const REFILL_BATCH: usize = 64;

/// Occupancy counters for one thread (shared-resource accounting is the sum over
/// threads).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Occupancy {
    pub rob: u32,
    pub lsq: u32,
    pub iq_int: u32,
    pub iq_fp: u32,
    pub rename_int: u32,
    pub rename_fp: u32,
    /// ICOUNT contribution: instructions fetched but not yet issued.
    pub icount: u32,
    /// Instructions fetched but not yet dispatched (front-end buffer occupancy).
    pub frontend: u32,
}

/// A pending MLP-prediction evaluation: the prediction made when the load executed,
/// waiting for the LLSR to produce the actual MLP distance at window exit.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PendingMlpEval {
    pub pc: u64,
    pub predicted_distance: u32,
}

/// The set of outstanding long-latency loads of one thread, as a flat
/// `(seq, detection_cycle)` vector. The set is tiny (bounded by the in-flight
/// misses the MSHRs allow), so linear search beats a hash map and — unlike a
/// hash map, whose per-cycle iteration in the snapshot refresh walks its whole
/// bucket array — the min-scan touches one dense allocation. All queries are
/// order-independent (membership, count, minimum cycle), so the swap-remove
/// keeps results deterministic.
#[derive(Clone, Debug, Default)]
pub(crate) struct OutstandingLll {
    entries: Vec<(u64, u64)>,
}

impl OutstandingLll {
    /// Records the long-latency load `seq`, detected at `cycle`.
    pub(super) fn insert(&mut self, seq: u64, cycle: u64) {
        debug_assert!(self.entries.iter().all(|&(s, _)| s != seq));
        self.entries.push((seq, cycle));
    }

    /// Removes the load `seq`; returns whether it was outstanding.
    pub(super) fn remove(&mut self, seq: u64) -> bool {
        match self.entries.iter().position(|&(s, _)| s == seq) {
            Some(pos) => {
                self.entries.swap_remove(pos);
                true
            }
            None => false,
        }
    }

    /// Number of outstanding long-latency loads.
    pub(super) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Detection cycle of the oldest outstanding long-latency load, if any.
    pub(super) fn min_cycle(&self) -> Option<u64> {
        self.entries.iter().map(|&(_, c)| c).min()
    }
}

/// A squashed instruction waiting to be re-fetched, together with the branch
/// prediction outcome recorded at its first fetch (re-fetches replay that outcome
/// instead of re-querying the predictor, so the predictor sees every dynamic
/// branch exactly once, in trace order).
#[derive(Clone, Copy, Debug)]
pub(crate) struct RefetchEntry {
    pub op: TraceOp,
    pub mispredicted: bool,
    pub predicted_taken: bool,
}

/// All per-thread pipeline state.
pub(crate) struct ThreadContext {
    /// The workload being executed.
    pub trace: Box<dyn TraceSource>,
    /// Batched-refill buffer: trace ops pulled [`REFILL_BATCH`] at a time, so
    /// the trace object's virtual dispatch is paid once per batch.
    refill_buf: Vec<TraceOp>,
    /// Next unconsumed position in `refill_buf`.
    refill_pos: usize,
    /// Instructions squashed from the pipeline that must be re-fetched, in order.
    pub refetch: VecDeque<RefetchEntry>,
    /// In-flight instructions in program order (front-end buffer + ROB).
    pub window: OpWindow,
    /// Next sequence number to assign at fetch.
    pub next_seq: u64,
    /// Youngest sequence number fetched so far.
    pub latest_fetched_seq: u64,
    /// Occupancy counters.
    pub occ: Occupancy,
    /// Committed instruction count.
    pub committed: u64,
    /// Outstanding long-latency loads: seq -> cycle at which the miss was detected.
    pub outstanding_lll: OutstandingLll,
    /// Outstanding L1 data-cache misses (count), the DCRA memory-intensity signal.
    pub outstanding_l1d: u32,
    /// Per-thread branch predictor.
    pub branch_predictor: BranchPredictor,
    /// Long-latency load predictor (miss pattern predictor).
    pub lll_predictor: MissPatternPredictor,
    /// MLP distance predictor.
    pub mlp_predictor: MlpDistancePredictor,
    /// Binary MLP predictor (Section 6.5 alternatives).
    pub binary_mlp_predictor: BinaryMlpPredictor,
    /// Long-latency shift register observing the commit stream.
    pub llsr: Llsr,
    /// Predictions awaiting their LLSR ground truth, in commit order.
    pub pending_mlp_evals: VecDeque<PendingMlpEval>,
    /// Whether the thread is still running (has not reached its instruction budget).
    pub active: bool,
}

impl ThreadContext {
    /// Creates the per-thread state for `config`, pulling instructions from `trace`.
    pub(super) fn new(config: &SmtConfig, trace: Box<dyn TraceSource>) -> Self {
        // The window holds the front-end buffer plus this thread's share of the
        // (machine-wide) ROB; a thread can transiently own the whole ROB.
        let window_capacity =
            (config.rob_size + config.frontend_depth * config.fetch_width) as usize;
        ThreadContext {
            trace,
            refill_buf: Vec::with_capacity(REFILL_BATCH),
            refill_pos: 0,
            refetch: VecDeque::new(),
            window: OpWindow::new(window_capacity),
            next_seq: 1,
            latest_fetched_seq: 0,
            occ: Occupancy::default(),
            committed: 0,
            outstanding_lll: OutstandingLll::default(),
            outstanding_l1d: 0,
            branch_predictor: BranchPredictor::new(
                config.gshare_entries,
                config.btb_entries,
                config.btb_assoc,
            ),
            lll_predictor: MissPatternPredictor::new(config.lll_predictor_entries),
            mlp_predictor: MlpDistancePredictor::new(
                config.mlp_predictor_entries,
                config.llsr_length(),
            ),
            binary_mlp_predictor: BinaryMlpPredictor::new(config.mlp_predictor_entries),
            llsr: Llsr::new(config.llsr_length() as usize),
            pending_mlp_evals: VecDeque::new(),
            active: true,
        }
    }

    /// Next instruction to fetch: a previously squashed instruction (with its
    /// recorded branch-prediction outcome) if any, otherwise a fresh one from
    /// the batched refill buffer (refilled from the trace source when drained).
    pub(super) fn pull_op(&mut self) -> (TraceOp, Option<RefetchEntry>) {
        if let Some(entry) = self.refetch.pop_front() {
            return (entry.op, Some(entry));
        }
        if self.refill_pos == self.refill_buf.len() {
            self.refill_buf.clear();
            self.refill_pos = 0;
            self.trace.refill(&mut self.refill_buf, REFILL_BATCH);
            if self.refill_buf.is_empty() {
                // A `refill` override that under-delivers (trace sources are
                // infinite by contract, but a custom impl may not honour
                // that): fall back to the per-op path instead of indexing an
                // empty buffer. Engine-facing sources must never take this
                // path — it silently degrades every fetch to one virtual call
                // per op, defeating the batched-refill design.
                debug_assert!(
                    false,
                    "TraceSource::refill delivered no ops (source `{}`): engine-facing \
                     sources must honour the infinite-stream batch contract",
                    self.trace.name()
                );
                return (self.trace.next_op(), None);
            }
        }
        let op = self.refill_buf[self.refill_pos];
        self.refill_pos += 1;
        (op, None)
    }

    /// Discards the next `n` trace ops without touching any other state.
    ///
    /// Already-materialized ops — queued re-fetches and the unconsumed tail of
    /// the refill buffer — are drained one at a time; the remainder is skipped
    /// in bulk through [`TraceSource::skip`], which is an O(1) seek for
    /// seekable sources (`FileTraceSource`) and a generate-and-discard loop
    /// for synthetic ones.
    pub(super) fn skip_ops(&mut self, n: u64) {
        let mut remaining = n;
        while remaining > 0 && (!self.refetch.is_empty() || self.refill_pos < self.refill_buf.len())
        {
            let _ = self.pull_op();
            remaining -= 1;
        }
        self.trace.skip(remaining);
    }

    /// Trace ops pulled into the refill buffer but not yet consumed, in
    /// stream order (captured by checkpoints so a restored thread resumes at
    /// the exact trace position).
    pub(super) fn pending_trace_ops(&self) -> &[TraceOp] {
        &self.refill_buf[self.refill_pos..]
    }

    /// Replaces the refill buffer with `ops` (a checkpoint's unconsumed
    /// suffix), to be consumed before the trace source is pulled again.
    pub(super) fn set_pending_trace_ops(&mut self, ops: Vec<TraceOp>) {
        self.refill_buf = ops;
        self.refill_pos = 0;
    }

    /// Cycle at which the oldest currently outstanding long-latency load was
    /// detected (for the COT rule).
    pub(super) fn oldest_lll_cycle(&self) -> Option<u64> {
        self.outstanding_lll.min_cycle()
    }

    /// The predictor front end consults for a load: returns
    /// `(predicted_long_latency, predicted_mlp_distance, predicted_has_mlp)`.
    pub(super) fn predict_load(&mut self, pc: u64) -> (bool, u32, bool) {
        let lll = self.lll_predictor.predict(pc);
        let distance = self.mlp_predictor.predict(pc);
        let has_mlp = self.binary_mlp_predictor.predict(pc);
        (lll, distance, has_mlp)
    }
}
