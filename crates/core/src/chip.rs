//! The chip-level simulator: a CMP of SMT cores sharing a last-level cache
//! and a memory bus.
//!
//! A [`ChipSimulator`] owns `num_cores` independent [`Core`] pipelines and
//! one [`smt_mem::SharedLlc`]. Each chip cycle, every core advances one
//! cycle against the shared level; cores interact *only* through LLC
//! capacity, the LLC MSHR file, and bus bandwidth. Under the chip
//! arbitration discipline (see [`smt_mem::shared`]) the shared level's
//! per-cycle state is a pure function of the *set* of requests made in the
//! cycle, so chip results are invariant to the order cores are stepped in —
//! [`ChipSimulator::step_with_core_order`] exposes that property to tests.
//!
//! A one-core chip degenerates exactly to the paper's single-core machine
//! ([`crate::pipeline::SmtSimulator`]): same discipline, same per-requester
//! MSHRs, uncontended bus, bit-for-bit identical statistics.

use smt_fetch::build_policy;
use smt_mem::SharedLlc;
use smt_trace::TraceSource;
use smt_types::config::FetchPolicyKind;
use smt_types::{AdaptiveConfig, ChipConfig, ChipStats, MachineStats, SimError};

use crate::pipeline::{Core, SimOptions};

/// The chip (CMP-of-SMT) simulator.
///
/// # Example
///
/// ```
/// use smt_core::chip::ChipSimulator;
/// use smt_core::pipeline::SimOptions;
/// use smt_trace::{spec, SyntheticTraceGenerator};
/// use smt_types::ChipConfig;
///
/// # fn main() -> Result<(), smt_types::SimError> {
/// let chip = ChipConfig::baseline(2, 2);
/// let traces = vec![
///     vec!["mcf", "gcc"],
///     vec!["swim", "twolf"],
/// ]
/// .into_iter()
/// .enumerate()
/// .map(|(core, names)| {
///     names
///         .into_iter()
///         .enumerate()
///         .map(|(slot, name)| {
///             let seed = (core * 2 + slot + 1) as u64;
///             Box::new(SyntheticTraceGenerator::new(
///                 spec::benchmark(name).unwrap(),
///                 seed,
///             )) as Box<dyn smt_trace::TraceSource>
///         })
///         .collect()
/// })
/// .collect();
/// let mut sim = ChipSimulator::new(chip, traces)?;
/// let stats = sim.run(SimOptions::with_instructions(1_000));
/// assert_eq!(stats.num_cores(), 2);
/// assert!(stats.cycles > 0);
/// assert!(stats.total_committed() > 0);
/// # Ok(())
/// # }
/// ```
pub struct ChipSimulator {
    config: ChipConfig,
    cores: Vec<Core>,
    shared: SharedLlc,
    cycle: u64,
}

impl ChipSimulator {
    /// Builds a chip for `config` running one trace source per hardware
    /// thread of each core (`traces_per_core[core][thread]`). Every core uses
    /// the fetch policy named in `config.core`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the chip configuration does not
    /// validate and [`SimError::InvalidWorkload`] if the trace grid does not
    /// match the chip's core/thread geometry.
    pub fn new(
        config: ChipConfig,
        traces_per_core: Vec<Vec<Box<dyn TraceSource>>>,
    ) -> Result<Self, SimError> {
        config.validate()?;
        if traces_per_core.len() != config.num_cores {
            return Err(SimError::invalid_workload(format!(
                "expected trace sources for {} cores, got {}",
                config.num_cores,
                traces_per_core.len()
            )));
        }
        let shared = SharedLlc::for_chip(&config);
        let mut cores = Vec::with_capacity(config.num_cores);
        for (core_id, traces) in traces_per_core.into_iter().enumerate() {
            let core_config = config.core.clone();
            let policy = build_policy(core_config.fetch_policy, &core_config);
            cores.push(Core::with_policy(core_config, traces, policy, core_id)?);
        }
        Ok(ChipSimulator {
            config,
            cores,
            shared,
            cycle: 0,
        })
    }

    /// Builds a chip whose cores are driven by the adaptive policy engine:
    /// every core gets its *own* selector instance (selectors keep state) and
    /// starts on `adaptive.candidates[0]`, overriding the fetch policy named
    /// in `config.core`. Cores then switch policies independently, each on
    /// its own interval telemetry.
    ///
    /// # Errors
    ///
    /// Same as [`ChipSimulator::new`], plus [`SimError::InvalidConfig`] for
    /// an invalid adaptive configuration.
    pub fn new_adaptive(
        config: ChipConfig,
        traces_per_core: Vec<Vec<Box<dyn TraceSource>>>,
        adaptive: AdaptiveConfig,
    ) -> Result<Self, SimError> {
        adaptive.validate()?;
        let mut sim = Self::new(config, traces_per_core)?;
        for core in &mut sim.cores {
            core.set_adaptive(adaptive.clone())?;
        }
        Ok(sim)
    }

    /// Fraction of completed intervals each policy was installed for on one
    /// core (see [`Core::policy_residency`]); `None` when the chip is not
    /// adaptive.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn policy_residency(&self, core: usize) -> Option<Vec<(FetchPolicyKind, f64)>> {
        self.cores[core].policy_residency()
    }

    /// The chip configuration the simulator was built with.
    pub fn config(&self) -> &ChipConfig {
        &self.config
    }

    /// Number of cores on the chip.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Current cycle count (identical across cores: they step in lockstep).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics of one core accumulated so far.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_stats(&self, core: usize) -> &MachineStats {
        self.cores[core].stats()
    }

    /// Cycles elapsed in the current measurement phase.
    pub fn measured_cycles(&self) -> u64 {
        self.cores.first().map_or(0, |c| c.measured_cycles())
    }

    /// Advances the whole chip by one cycle, stepping cores in ascending
    /// core-id order.
    pub fn step(&mut self) {
        self.shared.begin_cycle(self.cycle);
        for core in &mut self.cores {
            core.step_against(&mut self.shared);
        }
        self.shared.end_cycle();
        self.cycle += 1;
    }

    /// Advances the whole chip by one cycle, stepping cores in the given
    /// order. Under the chip arbitration discipline the results are
    /// independent of the order; the determinism tests step reversed against
    /// canonical to pin that property.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..num_cores`.
    pub fn step_with_core_order(&mut self, order: &[usize]) {
        assert_eq!(order.len(), self.cores.len(), "order must cover every core");
        let mut seen = vec![false; self.cores.len()];
        for &core in order {
            assert!(
                !std::mem::replace(&mut seen[core], true),
                "core {core} stepped twice"
            );
        }
        self.shared.begin_cycle(self.cycle);
        for &core in order {
            self.cores[core].step_against(&mut self.shared);
        }
        self.shared.end_cycle();
        self.cycle += 1;
    }

    /// Committed instruction counts across the chip, in `(core, thread)` order.
    fn committed(&self) -> impl Iterator<Item = u64> + '_ {
        self.cores.iter().flat_map(|c| c.committed())
    }

    /// Functionally fast-forwards every thread of every core by
    /// `instructions_per_thread` instructions (see
    /// [`crate::pipeline::SmtSimulator::fast_forward`]). Cores advance in
    /// lockstep rounds bracketed by the shared level's cycle discipline, so
    /// under chip arbitration the resulting state is — like detailed
    /// stepping — invariant to the order cores advance within a round.
    pub fn fast_forward(&mut self, instructions_per_thread: u64) {
        /// Instructions each thread advances per lockstep round.
        const ROUND: u64 = 64;
        let mut remaining = instructions_per_thread;
        while remaining > 0 {
            let chunk = remaining.min(ROUND);
            self.shared.begin_cycle(self.cycle);
            for core in &mut self.cores {
                core.fast_forward_against(&mut self.shared, chunk);
            }
            self.shared.end_cycle();
            remaining -= chunk;
        }
    }

    /// Functionally fast-forwards like [`ChipSimulator::fast_forward`], but
    /// advancing cores in the given order within every lockstep round. Under
    /// chip arbitration the resulting state is independent of the order; the
    /// determinism tests pin that property.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..num_cores`.
    pub fn fast_forward_with_core_order(&mut self, instructions_per_thread: u64, order: &[usize]) {
        assert_eq!(order.len(), self.cores.len(), "order must cover every core");
        let mut seen = vec![false; self.cores.len()];
        for &core in order {
            assert!(
                !std::mem::replace(&mut seen[core], true),
                "core {core} stepped twice"
            );
        }
        const ROUND: u64 = 64;
        let mut remaining = instructions_per_thread;
        while remaining > 0 {
            let chunk = remaining.min(ROUND);
            self.shared.begin_cycle(self.cycle);
            for &core in order {
                self.cores[core].fast_forward_against(&mut self.shared, chunk);
            }
            self.shared.end_cycle();
            remaining -= chunk;
        }
    }

    /// Runs the warm-up phase followed by the measured phase, stopping the
    /// measured phase once any thread of any core has committed the
    /// instruction budget (the paper's stop criterion, applied chip-wide) or
    /// the cycle limit is hit, and returns the statistics of the measured
    /// phase.
    pub fn run(&mut self, options: SimOptions) -> ChipStats {
        self.warm_up(options.warmup_instructions_per_thread, options.max_cycles);
        let baselines: Vec<u64> = self.committed().collect();
        while self.cycle < options.max_cycles {
            if self
                .committed()
                .zip(&baselines)
                .any(|(committed, &base)| committed - base >= options.max_instructions_per_thread)
            {
                break;
            }
            self.step();
        }
        for core in &mut self.cores {
            core.finalize_cycles();
        }
        self.chip_stats()
    }

    /// Runs until every thread of every core has committed `instructions`
    /// further instructions, then clears all statistics (microarchitectural
    /// state stays warm). A zero-length warm-up is a no-op.
    pub fn warm_up(&mut self, instructions: u64, max_cycles: u64) {
        if instructions == 0 {
            return;
        }
        let targets: Vec<u64> = self.committed().map(|c| c + instructions).collect();
        while self.cycle < max_cycles
            && self
                .committed()
                .zip(&targets)
                .any(|(committed, &target)| committed < target)
        {
            self.step();
        }
        self.reset_stats();
    }

    /// Zeroes all statistics counters on every core without disturbing
    /// microarchitectural state.
    pub fn reset_stats(&mut self) {
        for core in &mut self.cores {
            core.reset_stats();
        }
    }

    /// Assembles the current per-core statistics into a [`ChipStats`] record.
    /// The chip-wide cycle count is taken from the per-core records when
    /// finalized by [`ChipSimulator::run`], otherwise from the live measured
    /// count.
    pub fn chip_stats(&self) -> ChipStats {
        let cores: Vec<MachineStats> = self.cores.iter().map(|c| c.stats().clone()).collect();
        let cycles = cores
            .first()
            .map_or(0, |c| c.cycles.max(self.measured_cycles()));
        ChipStats { cycles, cores }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{build_trace, RunScale};

    fn chip_traces(assignments: &[&[&str]], scale: RunScale) -> Vec<Vec<Box<dyn TraceSource>>> {
        assignments
            .iter()
            .map(|core| {
                core.iter()
                    .map(|b| build_trace(b, scale).expect("known benchmark"))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn two_core_chip_runs_to_budget() {
        let scale = RunScale::tiny();
        let chip = ChipConfig::baseline(2, 2);
        let mut sim = ChipSimulator::new(
            chip,
            chip_traces(&[&["mcf", "gcc"], &["swim", "twolf"]], scale),
        )
        .unwrap();
        let stats = sim.run(scale.sim_options());
        assert_eq!(stats.num_cores(), 2);
        assert!(stats.cycles > 0);
        let max = stats
            .threads()
            .map(|t| t.committed_instructions)
            .max()
            .unwrap();
        assert!(max >= scale.instructions_per_thread);
        assert!(stats.total_ipc() > 0.0);
    }

    #[test]
    fn chip_runs_are_reproducible() {
        let scale = RunScale::tiny();
        let run = || {
            let chip = ChipConfig::baseline(2, 2)
                .with_policy(smt_types::config::FetchPolicyKind::MlpFlush);
            let mut sim = ChipSimulator::new(
                chip,
                chip_traces(&[&["mcf", "swim"], &["gcc", "twolf"]], scale),
            )
            .unwrap();
            sim.run(scale.sim_options())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn trace_grid_must_match_geometry() {
        let scale = RunScale::tiny();
        let chip = ChipConfig::baseline(2, 2);
        let err = ChipSimulator::new(chip, chip_traces(&[&["mcf", "gcc"]], scale));
        assert!(err.is_err());
    }
}
