//! `smt-core`: the SMT processor simulator, system-level metrics, workload
//! definitions and experiment runners reproducing "A Memory-Level Parallelism
//! Aware Fetch Policy for SMT Processors" (Eyerman & Eeckhout, HPCA 2007 / TACO
//! 2009).
//!
//! The crate is organised as:
//!
//! * [`pipeline`] — the cycle-level SMT out-of-order pipeline (SMTSIM substitute),
//! * [`chip`] — the chip-level simulator: N cores in lockstep against a
//!   shared LLC and memory bus,
//! * [`metrics`] — STP, ANTT and averaging helpers (Section 5),
//! * [`workloads`] — the two-thread and four-thread multiprogram workloads of
//!   Tables II and III,
//! * [`runner`] — high-level helpers that run single-threaded reference and
//!   multithreaded workloads and combine them into STP/ANTT results,
//! * [`experiments`] — one runner per table/figure of the evaluation section,
//! * [`throughput`] — the simulator-throughput (sims/sec) harness behind
//!   `smt-cli bench` and `BENCH_throughput.json`.
//!
//! # Quickstart
//!
//! ```
//! use smt_core::runner::{self, RunScale};
//! use smt_types::config::FetchPolicyKind;
//!
//! # fn main() -> Result<(), smt_types::SimError> {
//! // Compare ICOUNT and MLP-aware flush on one MLP-intensive two-thread workload.
//! let scale = RunScale::tiny();
//! let icount = runner::evaluate_workload(&["mcf", "swim"], FetchPolicyKind::Icount, scale)?;
//! let mlp = runner::evaluate_workload(&["mcf", "swim"], FetchPolicyKind::MlpFlush, scale)?;
//! assert!(icount.stp > 0.0 && mlp.stp > 0.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod artifacts;
pub mod chip;
pub mod experiments;
pub mod metrics;
pub mod pipeline;
pub mod runner;
pub mod throughput;
pub mod workloads;

pub use chip::ChipSimulator;
pub use pipeline::checkpoint::{SimCheckpoint, ThreadCheckpoint};
pub use pipeline::sampling::SampledRun;
pub use pipeline::{Core, SimOptions, SmtSimulator};
pub use runner::{
    evaluate_workload, evaluate_workload_sampled, CheckpointCache, RunScale, SampledWorkloadResult,
    WorkloadResult,
};
