//! System-level multiprogram performance metrics (Section 5 of the paper).
//!
//! * **STP** (system throughput) is the sum over programs of
//!   `CPI_single_thread / CPI_multi_thread` — identical to weighted speedup.
//!   Higher is better.
//! * **ANTT** (average normalized turnaround time) is the arithmetic mean of
//!   `CPI_multi_thread / CPI_single_thread` — the reciprocal of the hmean metric.
//!   Lower is better.
//!
//! When averaging across workloads the paper follows John (2006): harmonic mean
//! for STP, arithmetic mean for ANTT.
//!
//! Chip-level runs reuse the same definitions: each thread is normalized
//! against a run alone on one core of the chip, [`flatten_chip_stats`] turns
//! a [`ChipStats`] record into the per-thread shape every helper here
//! expects, and [`per_core_stp`] splits the throughput sum by core.

use smt_types::{ChipStats, MachineStats};

/// System throughput (weighted speedup) from per-program single-threaded and
/// multithreaded CPIs.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty, or if any CPI is not
/// strictly positive.
///
/// # Example
///
/// ```
/// use smt_core::metrics::stp;
/// // Two programs, each running at exactly half its single-threaded speed.
/// assert!((stp(&[1.0, 2.0], &[2.0, 4.0]) - 1.0).abs() < 1e-12);
/// ```
pub fn stp(single_thread_cpi: &[f64], multi_thread_cpi: &[f64]) -> f64 {
    validate(single_thread_cpi, multi_thread_cpi);
    single_thread_cpi
        .iter()
        .zip(multi_thread_cpi)
        .map(|(st, mt)| st / mt)
        .sum()
}

/// Average normalized turnaround time from per-program single-threaded and
/// multithreaded CPIs.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty, or if any CPI is not
/// strictly positive.
///
/// # Example
///
/// ```
/// use smt_core::metrics::antt;
/// assert!((antt(&[1.0, 1.0], &[2.0, 4.0]) - 3.0).abs() < 1e-12);
/// ```
pub fn antt(single_thread_cpi: &[f64], multi_thread_cpi: &[f64]) -> f64 {
    validate(single_thread_cpi, multi_thread_cpi);
    let n = single_thread_cpi.len() as f64;
    single_thread_cpi
        .iter()
        .zip(multi_thread_cpi)
        .map(|(st, mt)| mt / st)
        .sum::<f64>()
        / n
}

fn validate(st: &[f64], mt: &[f64]) {
    assert_eq!(st.len(), mt.len(), "CPI vectors must have the same length");
    assert!(!st.is_empty(), "CPI vectors must not be empty");
    assert!(
        st.iter()
            .chain(mt.iter())
            .all(|&c| c.is_finite() && c > 0.0),
        "CPIs must be positive and finite"
    );
}

/// Fraction of observations at or below `threshold` in a cumulative
/// distribution given as `(upper bound, cumulative fraction)` points sorted by
/// bound (the Figure 4 MLP-distance CDF representation).
pub fn cdf_fraction_within(cdf: &[(u32, f64)], threshold: u32) -> f64 {
    let mut last = 0.0;
    for &(bound, fraction) in cdf {
        if bound > threshold {
            return last;
        }
        last = fraction;
    }
    last
}

/// Flattens a chip run into one [`MachineStats`] whose threads are the
/// chip's `(core, thread)` slots in canonical core-major order, so every
/// per-thread metric helper (and report formatter) written for the
/// single-core machine also works on chip runs.
pub fn flatten_chip_stats(chip: &ChipStats) -> MachineStats {
    MachineStats {
        cycles: chip.cycles,
        threads: chip.threads().cloned().collect(),
    }
}

/// Per-core STP contributions of a chip run: for each core, the sum over its
/// threads of `st_cpi / mt_cpi`, given the flattened per-thread CPI vectors
/// in the same canonical `(core, thread)` order as
/// [`flatten_chip_stats`]. The total STP is the sum over cores.
///
/// # Panics
///
/// Panics if the CPI slices disagree with the chip geometry or contain
/// non-positive values.
pub fn per_core_stp(
    chip: &ChipStats,
    single_thread_cpi: &[f64],
    multi_thread_cpi: &[f64],
) -> Vec<f64> {
    let threads_per_core = chip.cores.first().map_or(0, |c| c.threads.len());
    assert_eq!(
        single_thread_cpi.len(),
        chip.num_cores() * threads_per_core,
        "one CPI pair per (core, thread) slot required"
    );
    (0..chip.num_cores())
        .map(|core| {
            let lo = core * threads_per_core;
            let hi = lo + threads_per_core;
            stp(&single_thread_cpi[lo..hi], &multi_thread_cpi[lo..hi])
        })
        .collect()
}

/// Harmonic mean (used to average STP across workloads).
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn harmonic_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "cannot average an empty set");
    assert!(
        values.iter().all(|&v| v > 0.0),
        "harmonic mean needs positive values"
    );
    values.len() as f64 / values.iter().map(|v| 1.0 / v).sum::<f64>()
}

/// Arithmetic mean (used to average ANTT across workloads).
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "cannot average an empty set");
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stp_is_weighted_speedup() {
        // Program 0 runs at full speed, program 1 at a third of its ST speed.
        let v = stp(&[2.0, 3.0], &[2.0, 9.0]);
        assert!((v - (1.0 + 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn antt_is_mean_slowdown() {
        let v = antt(&[2.0, 3.0], &[2.0, 9.0]);
        assert!((v - (1.0 + 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_sharing_bounds() {
        // n programs all running at single-threaded speed: STP = n, ANTT = 1.
        let st = [1.5, 0.8, 2.0, 1.1];
        assert!((stp(&st, &st) - 4.0).abs() < 1e-12);
        assert!((antt(&st, &st) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn means() {
        assert!((harmonic_mean(&[1.0, 2.0, 4.0]) - 3.0 / (1.0 + 0.5 + 0.25)).abs() < 1e-12);
        assert!((arithmetic_mean(&[1.0, 2.0, 4.0]) - 7.0 / 3.0).abs() < 1e-12);
        assert!(harmonic_mean(&[2.0, 2.0]) <= arithmetic_mean(&[2.0, 2.0]) + 1e-12);
    }

    #[test]
    fn chip_flatten_and_per_core_stp() {
        let mut chip = ChipStats::new(2, 2);
        chip.cycles = 100;
        chip.cores[0].threads[0].committed_instructions = 50;
        chip.cores[1].threads[1].committed_instructions = 25;
        let flat = flatten_chip_stats(&chip);
        assert_eq!(flat.cycles, 100);
        assert_eq!(flat.threads.len(), 4);
        assert_eq!(flat.threads[0].committed_instructions, 50);
        assert_eq!(flat.threads[3].committed_instructions, 25);
        // Core 0's threads run at full speed, core 1's at half speed.
        let st = [1.0, 1.0, 1.0, 1.0];
        let mt = [1.0, 1.0, 2.0, 2.0];
        let per_core = per_core_stp(&chip, &st, &mt);
        assert_eq!(per_core.len(), 2);
        assert!((per_core[0] - 2.0).abs() < 1e-12);
        assert!((per_core[1] - 1.0).abs() < 1e-12);
        assert!((per_core.iter().sum::<f64>() - stp(&st, &mt)).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn per_core_stp_rejects_wrong_geometry() {
        let chip = ChipStats::new(2, 2);
        let _ = per_core_stp(&chip, &[1.0, 1.0], &[1.0, 1.0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = stp(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn non_positive_cpi_panics() {
        let _ = antt(&[0.0, 1.0], &[1.0, 1.0]);
    }

    #[test]
    #[should_panic]
    fn empty_mean_panics() {
        let _ = harmonic_mean(&[]);
    }
}
