//! High-level run helpers: single-threaded references, multiprogram runs, and
//! STP/ANTT evaluation following the paper's methodology (Section 5).
//!
//! The paper stops a multiprogram simulation when the first program reaches its
//! instruction budget; each co-runner has then executed `x_i` instructions and its
//! single-threaded CPI is taken *at the same instruction count* `x_i`. The
//! [`StReferenceCache`] records a cycles-per-instructions curve for each benchmark
//! so those per-`x_i` reference CPIs do not require a fresh simulation per policy.

use std::collections::HashMap;

use smt_trace::{spec, SyntheticTraceGenerator, TraceSource};
use smt_types::config::FetchPolicyKind;
use smt_types::{MachineStats, SimError, SmtConfig};

use crate::metrics;
use crate::pipeline::{SimOptions, SmtSimulator};

/// How large a simulation to run; all experiment runners take one of these so the
/// same code scales from unit-test sized runs to paper-scale runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunScale {
    /// Instruction budget per thread (the multiprogram run stops when the first
    /// thread reaches it).
    pub instructions_per_thread: u64,
    /// Warm-up instructions per thread, excluded from all statistics.
    pub warmup_instructions: u64,
    /// Base random seed for the synthetic trace generators.
    pub seed: u64,
}

impl RunScale {
    /// Very small runs for doctests and smoke tests (2 K instructions).
    pub fn tiny() -> Self {
        RunScale {
            instructions_per_thread: 2_000,
            warmup_instructions: 1_000,
            seed: 42,
        }
    }

    /// Unit-test sized runs (10 K instructions).
    pub fn test() -> Self {
        RunScale {
            instructions_per_thread: 10_000,
            warmup_instructions: 4_000,
            seed: 42,
        }
    }

    /// Default experiment scale (60 K instructions per thread).
    pub fn standard() -> Self {
        RunScale {
            instructions_per_thread: 60_000,
            warmup_instructions: 10_000,
            seed: 42,
        }
    }

    /// Larger runs for the benchmark harness (150 K instructions per thread).
    pub fn full() -> Self {
        RunScale {
            instructions_per_thread: 150_000,
            warmup_instructions: 20_000,
            seed: 42,
        }
    }

    /// Returns a copy with a different instruction budget.
    pub fn with_instructions(mut self, instructions: u64) -> Self {
        self.instructions_per_thread = instructions;
        self
    }

    /// The [`SimOptions`] equivalent of this scale.
    pub fn sim_options(&self) -> SimOptions {
        SimOptions {
            max_instructions_per_thread: self.instructions_per_thread,
            warmup_instructions_per_thread: self.warmup_instructions,
            ..SimOptions::default()
        }
    }
}

impl Default for RunScale {
    fn default() -> Self {
        Self::standard()
    }
}

/// Deterministic per-benchmark seed so single-threaded and multithreaded runs of
/// the same benchmark replay the same instruction stream.
fn benchmark_seed(name: &str, base: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Builds the trace source for one benchmark.
///
/// # Errors
///
/// Returns [`SimError::UnknownBenchmark`] for names outside Table I.
pub fn build_trace(benchmark: &str, scale: RunScale) -> Result<Box<dyn TraceSource>, SimError> {
    let profile = spec::benchmark(benchmark)?;
    Ok(Box::new(SyntheticTraceGenerator::new(
        profile,
        benchmark_seed(benchmark, scale.seed),
    )))
}

/// Runs one benchmark alone on the single-threaded baseline configuration derived
/// from `config` and returns its statistics.
///
/// # Errors
///
/// Returns [`SimError::UnknownBenchmark`] for unknown benchmarks or
/// [`SimError::InvalidConfig`] if the derived configuration is invalid.
pub fn run_single_thread(
    benchmark: &str,
    config: &SmtConfig,
    scale: RunScale,
) -> Result<MachineStats, SimError> {
    let mut st_config = config.clone();
    st_config.num_threads = 1;
    st_config.fetch_policy = FetchPolicyKind::Icount;
    let trace = build_trace(benchmark, scale)?;
    let mut sim = SmtSimulator::new(st_config, vec![trace])?;
    Ok(sim.run(scale.sim_options()))
}

/// Runs a multiprogram workload under `policy` and returns the raw machine
/// statistics (no single-threaded normalization).
///
/// # Errors
///
/// Returns an error for unknown benchmarks or invalid configurations.
pub fn run_multiprogram(
    benchmarks: &[&str],
    policy: FetchPolicyKind,
    config: &SmtConfig,
    scale: RunScale,
) -> Result<MachineStats, SimError> {
    let mut mt_config = config.clone();
    mt_config.num_threads = benchmarks.len();
    mt_config.fetch_policy = policy;
    let traces = benchmarks
        .iter()
        .map(|b| build_trace(b, scale))
        .collect::<Result<Vec<_>, _>>()?;
    let mut sim = SmtSimulator::new(mt_config, traces)?;
    Ok(sim.run(scale.sim_options()))
}

/// A cycles-versus-instructions curve recorded from a single-threaded run.
#[derive(Clone, Debug)]
struct StCurve {
    interval: u64,
    /// `cycles[i]` = cycle count when `(i + 1) * interval` instructions had
    /// committed.
    cycles: Vec<u64>,
    /// Total instructions the curve covers.
    total_instructions: u64,
    /// Total cycles of the recorded run.
    total_cycles: u64,
}

impl StCurve {
    /// Single-threaded CPI after `instructions` committed instructions.
    fn cpi_at(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            return 1.0;
        }
        let idx = instructions / self.interval;
        let cycles = if idx == 0 {
            // Scale the first checkpoint linearly below one interval.
            let first = *self.cycles.first().unwrap_or(&self.total_cycles);
            (first as f64 * instructions as f64 / self.interval as f64).max(1.0) as u64
        } else if (idx as usize) <= self.cycles.len() {
            self.cycles[(idx as usize) - 1]
        } else {
            self.total_cycles
        };
        cycles as f64 / instructions.min(self.total_instructions).max(1) as f64
    }
}

/// Cache of single-threaded reference curves keyed by benchmark and the
/// configuration parameters that affect single-threaded timing.
#[derive(Default)]
pub struct StReferenceCache {
    curves: HashMap<(String, ConfigKey), StCurve>,
}

/// The configuration fields that change single-threaded behaviour (sweep knobs).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct ConfigKey {
    memory_latency: u64,
    rob_size: u32,
    lsq_size: u32,
    iq_int: u32,
    rename_int: u32,
    prefetcher: bool,
    serialize: bool,
    instructions: u64,
    seed: u64,
}

impl ConfigKey {
    fn new(config: &SmtConfig, scale: RunScale) -> Self {
        ConfigKey {
            memory_latency: config.memory_latency,
            rob_size: config.rob_size,
            lsq_size: config.lsq_size,
            iq_int: config.iq_int_size,
            rename_int: config.rename_int,
            prefetcher: config.prefetcher.enabled,
            serialize: config.serialize_long_latency_loads,
            instructions: scale.instructions_per_thread,
            seed: scale.seed,
        }
    }
}

impl StReferenceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Single-threaded CPI of `benchmark` after `instructions` instructions on the
    /// single-threaded version of `config`, simulating (and caching) the reference
    /// run on first use.
    ///
    /// # Errors
    ///
    /// Propagates simulation construction errors.
    pub fn st_cpi(
        &mut self,
        benchmark: &str,
        config: &SmtConfig,
        scale: RunScale,
        instructions: u64,
    ) -> Result<f64, SimError> {
        let key = (benchmark.to_string(), ConfigKey::new(config, scale));
        if !self.curves.contains_key(&key) {
            let curve = record_st_curve(benchmark, config, scale)?;
            self.curves.insert(key.clone(), curve);
        }
        Ok(self.curves[&key].cpi_at(instructions))
    }
}

fn record_st_curve(benchmark: &str, config: &SmtConfig, scale: RunScale) -> Result<StCurve, SimError> {
    let mut st_config = config.clone();
    st_config.num_threads = 1;
    st_config.fetch_policy = FetchPolicyKind::Icount;
    let trace = build_trace(benchmark, scale)?;
    let mut sim = SmtSimulator::new(st_config, vec![trace])?;
    let max_cycles = SimOptions::default().max_cycles;
    sim.warm_up(scale.warmup_instructions, max_cycles);
    let interval = (scale.instructions_per_thread / 64).max(256);
    let mut cycles = Vec::new();
    let mut next_checkpoint = interval;
    let budget = scale.instructions_per_thread;
    while sim.stats().threads[0].committed_instructions < budget && sim.cycle() < max_cycles {
        sim.step();
        let committed = sim.stats().threads[0].committed_instructions;
        while committed >= next_checkpoint {
            cycles.push(sim.stats().cycles);
            next_checkpoint += interval;
        }
    }
    Ok(StCurve {
        interval,
        cycles,
        total_instructions: sim.stats().threads[0].committed_instructions,
        total_cycles: sim.stats().cycles,
    })
}

/// The STP/ANTT outcome of running one multiprogram workload under one policy.
#[derive(Clone, Debug)]
pub struct WorkloadResult {
    /// Workload name (benchmarks joined with dashes).
    pub workload: String,
    /// The fetch policy evaluated.
    pub policy: FetchPolicyKind,
    /// System throughput (higher is better).
    pub stp: f64,
    /// Average normalized turnaround time (lower is better).
    pub antt: f64,
    /// Per-thread IPC in the multithreaded run.
    pub per_thread_ipc: Vec<f64>,
    /// Per-thread single-threaded reference IPC at the same instruction counts.
    pub per_thread_st_ipc: Vec<f64>,
    /// Raw multithreaded statistics.
    pub mt_stats: MachineStats,
}

/// Evaluates one workload under one policy on the baseline configuration.
///
/// # Errors
///
/// Returns an error for unknown benchmarks or invalid configurations.
pub fn evaluate_workload(
    benchmarks: &[&str],
    policy: FetchPolicyKind,
    scale: RunScale,
) -> Result<WorkloadResult, SimError> {
    let config = SmtConfig::baseline(benchmarks.len());
    let mut cache = StReferenceCache::new();
    evaluate_workload_with(benchmarks, policy, &config, scale, &mut cache)
}

/// Evaluates one workload under one policy on an explicit configuration, reusing
/// `cache` for the single-threaded reference runs.
///
/// # Errors
///
/// Returns an error for unknown benchmarks or invalid configurations.
pub fn evaluate_workload_with(
    benchmarks: &[&str],
    policy: FetchPolicyKind,
    config: &SmtConfig,
    scale: RunScale,
    cache: &mut StReferenceCache,
) -> Result<WorkloadResult, SimError> {
    let mt_stats = run_multiprogram(benchmarks, policy, config, scale)?;
    let mut st_cpis = Vec::with_capacity(benchmarks.len());
    let mut mt_cpis = Vec::with_capacity(benchmarks.len());
    for (i, benchmark) in benchmarks.iter().enumerate() {
        let committed = mt_stats.threads[i].committed_instructions.max(1);
        let mt_cpi = mt_stats.cycles as f64 / committed as f64;
        let st_cpi = cache.st_cpi(benchmark, config, scale, committed)?;
        st_cpis.push(st_cpi);
        mt_cpis.push(mt_cpi);
    }
    Ok(WorkloadResult {
        workload: benchmarks.join("-"),
        policy,
        stp: metrics::stp(&st_cpis, &mt_cpis),
        antt: metrics::antt(&st_cpis, &mt_cpis),
        per_thread_ipc: mt_cpis.iter().map(|c| 1.0 / c).collect(),
        per_thread_st_ipc: st_cpis.iter().map(|c| 1.0 / c).collect(),
        mt_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_run_completes_budget() {
        let scale = RunScale::tiny();
        let cfg = SmtConfig::baseline(1);
        let stats = run_single_thread("gcc", &cfg, scale).unwrap();
        assert!(stats.threads[0].committed_instructions >= scale.instructions_per_thread);
        assert!(stats.cycles > 0);
        let ipc = stats.threads[0].ipc(stats.cycles);
        assert!(ipc > 0.1 && ipc <= 4.0, "IPC {ipc} out of range");
    }

    #[test]
    fn mlp_intensive_benchmark_has_lower_ipc_than_ilp() {
        let scale = RunScale::test();
        let cfg = SmtConfig::baseline(1);
        let gcc = run_single_thread("gcc", &cfg, scale).unwrap();
        let mcf = run_single_thread("mcf", &cfg, scale).unwrap();
        let gcc_ipc = gcc.threads[0].ipc(gcc.cycles);
        let mcf_ipc = mcf.threads[0].ipc(mcf.cycles);
        assert!(
            mcf_ipc < gcc_ipc,
            "mcf (memory bound, {mcf_ipc}) should be slower than gcc ({gcc_ipc})"
        );
    }

    #[test]
    fn multiprogram_run_stops_at_first_thread_budget() {
        let scale = RunScale::tiny();
        let cfg = SmtConfig::baseline(2);
        let stats = run_multiprogram(&["gcc", "gap"], FetchPolicyKind::Icount, &cfg, scale).unwrap();
        let max = stats
            .threads
            .iter()
            .map(|t| t.committed_instructions)
            .max()
            .unwrap();
        assert!(max >= scale.instructions_per_thread);
    }

    #[test]
    fn evaluate_workload_produces_sane_metrics() {
        let r = evaluate_workload(&["gcc", "gap"], FetchPolicyKind::Icount, RunScale::tiny()).unwrap();
        assert!(r.stp > 0.2 && r.stp <= 2.0 + 1e-9, "STP {} out of range", r.stp);
        assert!(r.antt >= 0.9, "ANTT {} should show some slowdown", r.antt);
        assert_eq!(r.per_thread_ipc.len(), 2);
        assert_eq!(r.workload, "gcc-gap");
    }

    #[test]
    fn st_cache_reuses_reference_runs() {
        let mut cache = StReferenceCache::new();
        let cfg = SmtConfig::baseline(2);
        let scale = RunScale::tiny();
        let a = cache.st_cpi("gcc", &cfg, scale, 1_000).unwrap();
        let b = cache.st_cpi("gcc", &cfg, scale, 1_000).unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.curves.len(), 1);
        let c = cache.st_cpi("gcc", &cfg, scale, 2_000).unwrap();
        assert!(c > 0.0);
        assert_eq!(cache.curves.len(), 1);
    }

    #[test]
    fn st_curve_interpolation_is_monotone_enough() {
        let curve = StCurve {
            interval: 100,
            cycles: vec![150, 320, 470, 640],
            total_instructions: 400,
            total_cycles: 640,
        };
        assert!((curve.cpi_at(100) - 1.5).abs() < 1e-12);
        assert!((curve.cpi_at(200) - 1.6).abs() < 1e-12);
        assert!((curve.cpi_at(400) - 1.6).abs() < 1e-12);
        // Beyond the recorded range we fall back to the final totals.
        assert!(curve.cpi_at(800) > 0.0);
        assert!(curve.cpi_at(0) > 0.0);
    }
}
