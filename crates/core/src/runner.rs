//! High-level run helpers: single-threaded references, multiprogram runs, and
//! STP/ANTT evaluation following the paper's methodology (Section 5).
//!
//! The paper stops a multiprogram simulation when the first program reaches its
//! instruction budget; each co-runner has then executed `x_i` instructions and its
//! single-threaded CPI is taken *at the same instruction count* `x_i`. The
//! [`StReferenceCache`] records a cycles-per-instructions curve for each benchmark
//! so those per-`x_i` reference CPIs do not require a fresh simulation per policy.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use serde::{Deserialize, Serialize};
use smt_sched::{build_allocation_policy, AllocationPolicyKind, ThreadSpec};
use smt_trace::{spec, FileTraceSource, SyntheticTraceGenerator, TraceSource};
use smt_types::adaptive::{AdaptiveConfig, PolicyResidency, SelectorKind};
use smt_types::config::FetchPolicyKind;
use smt_types::{
    ChipConfig, ChipStats, MachineStats, MetricEstimate, SamplingConfig, SimError, SmtConfig,
};

use crate::chip::ChipSimulator;
use crate::metrics;
use crate::pipeline::checkpoint::SimCheckpoint;
use crate::pipeline::{SimOptions, SmtSimulator};

/// How large a simulation to run; all experiment runners take one of these so the
/// same code scales from unit-test sized runs to paper-scale runs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct RunScale {
    /// Instruction budget per thread (the multiprogram run stops when the first
    /// thread reaches it).
    pub instructions_per_thread: u64,
    /// Warm-up instructions per thread, excluded from all statistics.
    pub warmup_instructions: u64,
    /// Base random seed for the synthetic trace generators.
    pub seed: u64,
    /// Optional deterministic cap on simulated cycles, checked inside the
    /// simulator step loop (the resilient engine's simulated-time deadline).
    /// Absent = the generous [`SimOptions`] default safety limit.
    pub max_cycles: Option<u64>,
}

impl RunScale {
    /// Very small runs for doctests and smoke tests (2 K instructions).
    pub fn tiny() -> Self {
        RunScale {
            instructions_per_thread: 2_000,
            warmup_instructions: 1_000,
            seed: 42,
            max_cycles: None,
        }
    }

    /// Unit-test sized runs (10 K instructions).
    pub fn test() -> Self {
        RunScale {
            instructions_per_thread: 10_000,
            warmup_instructions: 4_000,
            seed: 42,
            max_cycles: None,
        }
    }

    /// Default experiment scale (60 K instructions per thread).
    pub fn standard() -> Self {
        RunScale {
            instructions_per_thread: 60_000,
            warmup_instructions: 10_000,
            seed: 42,
            max_cycles: None,
        }
    }

    /// Larger runs for the benchmark harness (150 K instructions per thread).
    pub fn full() -> Self {
        RunScale {
            instructions_per_thread: 150_000,
            warmup_instructions: 20_000,
            seed: 42,
            max_cycles: None,
        }
    }

    /// Returns a copy with a different instruction budget.
    pub fn with_instructions(mut self, instructions: u64) -> Self {
        self.instructions_per_thread = instructions;
        self
    }

    /// Returns a copy with a deterministic simulated-cycle cap.
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = Some(max_cycles);
        self
    }

    /// The preset names accepted by [`RunScale::named`] (CLI `--scale` values).
    pub const NAMES: [&'static str; 4] = ["tiny", "test", "standard", "full"];

    /// Looks up a preset scale by name.
    pub fn named(name: &str) -> Option<RunScale> {
        match name {
            "tiny" => Some(Self::tiny()),
            "test" => Some(Self::test()),
            "standard" => Some(Self::standard()),
            "full" => Some(Self::full()),
            _ => None,
        }
    }

    /// Checks the scale for consistency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a zero instruction budget.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.instructions_per_thread == 0 {
            return Err(SimError::invalid_config(
                "scale: instructions_per_thread must be non-zero",
            ));
        }
        if self.max_cycles == Some(0) {
            return Err(SimError::invalid_config(
                "scale: max_cycles must be non-zero when set",
            ));
        }
        Ok(())
    }

    /// The [`SimOptions`] equivalent of this scale.
    pub fn sim_options(&self) -> SimOptions {
        let defaults = SimOptions::default();
        SimOptions {
            max_instructions_per_thread: self.instructions_per_thread,
            warmup_instructions_per_thread: self.warmup_instructions,
            max_cycles: self.max_cycles.unwrap_or(defaults.max_cycles),
        }
    }
}

impl Default for RunScale {
    fn default() -> Self {
        Self::standard()
    }
}

/// Deterministic per-benchmark seed so single-threaded and multithreaded runs of
/// the same benchmark replay the same instruction stream.
fn benchmark_seed(name: &str, base: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ base;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Builds the trace source for one benchmark.
///
/// `trace:<path>` names replay the `.smtt` file at `<path>` (relative paths
/// resolve against the process working directory); every other name
/// instantiates the synthetic generator for that SPEC CPU2000 benchmark,
/// seeded from the benchmark name and `scale.seed`. This is the single
/// construction hook every run path goes through — single-thread references,
/// multiprogram and chip runs, sampled warm-up and checkpoint capture — so
/// trace-backed workloads compose with all of them automatically.
///
/// # Errors
///
/// Returns [`SimError::UnknownBenchmark`] for names outside Table I, or
/// [`SimError::InvalidConfig`] when a `trace:` file is missing or malformed.
pub fn build_trace(benchmark: &str, scale: RunScale) -> Result<Box<dyn TraceSource>, SimError> {
    if let Some(path) = smt_trace::trace_path(benchmark) {
        return Ok(Box::new(FileTraceSource::open(path)?));
    }
    let profile = spec::benchmark(benchmark)?;
    Ok(Box::new(SyntheticTraceGenerator::new(
        profile,
        benchmark_seed(benchmark, scale.seed),
    )))
}

/// Runs one benchmark alone on the single-threaded baseline configuration derived
/// from `config` and returns its statistics.
///
/// # Errors
///
/// Returns [`SimError::UnknownBenchmark`] for unknown benchmarks or
/// [`SimError::InvalidConfig`] if the derived configuration is invalid.
pub fn run_single_thread(
    benchmark: &str,
    config: &SmtConfig,
    scale: RunScale,
) -> Result<MachineStats, SimError> {
    let mut st_config = config.clone();
    st_config.num_threads = 1;
    st_config.fetch_policy = FetchPolicyKind::Icount;
    let trace = build_trace(benchmark, scale)?;
    let mut sim = SmtSimulator::new(st_config, vec![trace])?;
    Ok(sim.run(scale.sim_options()))
}

/// Runs a multiprogram workload under `policy` and returns the raw machine
/// statistics (no single-threaded normalization).
///
/// # Errors
///
/// Returns an error for unknown benchmarks or invalid configurations.
pub fn run_multiprogram(
    benchmarks: &[&str],
    policy: FetchPolicyKind,
    config: &SmtConfig,
    scale: RunScale,
) -> Result<MachineStats, SimError> {
    let mut mt_config = config.clone();
    mt_config.num_threads = benchmarks.len();
    mt_config.fetch_policy = policy;
    let traces = benchmarks
        .iter()
        .map(|b| build_trace(b, scale))
        .collect::<Result<Vec<_>, _>>()?;
    let mut sim = SmtSimulator::new(mt_config, traces)?;
    Ok(sim.run(scale.sim_options()))
}

/// Runs a multiprogram workload under the adaptive policy engine and returns
/// the raw machine statistics plus the per-policy interval residency of the
/// measured phase.
///
/// # Errors
///
/// Returns an error for unknown benchmarks or invalid (machine or adaptive)
/// configurations.
pub fn run_multiprogram_adaptive(
    benchmarks: &[&str],
    adaptive: &AdaptiveConfig,
    config: &SmtConfig,
    scale: RunScale,
) -> Result<(MachineStats, Vec<PolicyResidency>), SimError> {
    let mut mt_config = config.clone();
    mt_config.num_threads = benchmarks.len();
    let traces = benchmarks
        .iter()
        .map(|b| build_trace(b, scale))
        .collect::<Result<Vec<_>, _>>()?;
    let mut sim = SmtSimulator::with_adaptive(mt_config, traces, adaptive.clone())?;
    let stats = sim.run(scale.sim_options());
    let residency = residency_records(
        sim.core()
            .policy_residency()
            .expect("adaptive simulator reports residency"),
    );
    Ok((stats, residency))
}

fn residency_records(fractions: Vec<(FetchPolicyKind, f64)>) -> Vec<PolicyResidency> {
    fractions
        .into_iter()
        .map(|(policy, fraction)| PolicyResidency { policy, fraction })
        .collect()
}

/// Averages per-core residency fractions into one chip-wide record set
/// (cores run the same number of intervals, so the unweighted mean is the
/// interval-weighted one).
fn merge_core_residencies(per_core: Vec<Vec<(FetchPolicyKind, f64)>>) -> Vec<PolicyResidency> {
    let cores = per_core.len().max(1) as f64;
    let mut merged: Vec<PolicyResidency> = Vec::new();
    for core in per_core {
        for (policy, fraction) in core {
            match merged.iter_mut().find(|r| r.policy == policy) {
                Some(r) => r.fraction += fraction / cores,
                None => merged.push(PolicyResidency {
                    policy,
                    fraction: fraction / cores,
                }),
            }
        }
    }
    merged
}

/// A cycles-versus-instructions curve recorded from a single-threaded run.
#[derive(Clone, Debug)]
struct StCurve {
    interval: u64,
    /// `cycles[i]` = cycle count when `(i + 1) * interval` instructions had
    /// committed.
    cycles: Vec<u64>,
    /// Total instructions the curve covers.
    total_instructions: u64,
    /// Total cycles of the recorded run.
    total_cycles: u64,
}

impl StCurve {
    /// Single-threaded CPI after `instructions` committed instructions.
    fn cpi_at(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            return 1.0;
        }
        let idx = instructions / self.interval;
        let cycles = if idx == 0 {
            // Scale the first checkpoint linearly below one interval.
            let first = *self.cycles.first().unwrap_or(&self.total_cycles);
            (first as f64 * instructions as f64 / self.interval as f64).max(1.0) as u64
        } else if (idx as usize) <= self.cycles.len() {
            self.cycles[(idx as usize) - 1]
        } else {
            self.total_cycles
        };
        cycles as f64 / instructions.min(self.total_instructions).max(1) as f64
    }
}

/// Cache of single-threaded reference curves keyed by benchmark and the
/// configuration parameters that affect single-threaded timing.
///
/// The cache is `Send + Sync` and designed to be shared across the worker
/// threads of the parallel experiment engine: each distinct
/// `(benchmark, configuration)` reference run is simulated **exactly once**
/// no matter how many threads ask for it concurrently. Internally the key map
/// is guarded by a mutex that is only held while looking up or inserting an
/// entry's [`OnceLock`] cell; the (expensive) reference simulation itself runs
/// outside the map lock, so threads needing different references never
/// serialize on each other.
#[derive(Default)]
pub struct StReferenceCache {
    #[allow(clippy::type_complexity)]
    curves: Mutex<HashMap<(String, ConfigKey), Arc<OnceLock<Result<StCurve, SimError>>>>>,
    reference_runs: AtomicU64,
}

/// Cache key: the *full* configuration normalized exactly as
/// [`record_st_curve`] normalizes it (one thread, ICOUNT fetch), plus the run
/// scale. Keying on the whole configuration rather than a hand-picked field
/// subset guarantees that any knob affecting single-threaded timing —
/// including ones added later — separates cache entries instead of silently
/// aliasing them.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct ConfigKey {
    st_config: SmtConfig,
    scale: RunScale,
}

impl ConfigKey {
    fn new(config: &SmtConfig, scale: RunScale) -> Self {
        let mut st_config = config.clone();
        st_config.num_threads = 1;
        st_config.fetch_policy = FetchPolicyKind::Icount;
        ConfigKey { st_config, scale }
    }
}

impl StReferenceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Single-threaded CPI of `benchmark` after `instructions` instructions on the
    /// single-threaded version of `config`, simulating (and caching) the reference
    /// run on first use. Concurrent callers asking for the same reference block
    /// until the one elected simulation finishes.
    ///
    /// # Errors
    ///
    /// Propagates simulation construction errors.
    pub fn st_cpi(
        &self,
        benchmark: &str,
        config: &SmtConfig,
        scale: RunScale,
        instructions: u64,
    ) -> Result<f64, SimError> {
        let key = (benchmark.to_string(), ConfigKey::new(config, scale));
        let cell = {
            // The map lock never wraps user code, but a cell body panicking
            // elsewhere must not cascade into "poisoned" aborts here: the
            // map is a plain insert-only table, valid even after a panic.
            let mut curves = self.curves.lock().unwrap_or_else(PoisonError::into_inner);
            Arc::clone(curves.entry(key).or_default())
        };
        let outcome = cell.get_or_init(|| {
            self.reference_runs.fetch_add(1, Ordering::Relaxed);
            record_st_curve(benchmark, config, scale)
        });
        match outcome {
            Ok(curve) => Ok(curve.cpi_at(instructions)),
            Err(e) => Err(e.clone()),
        }
    }

    /// Number of reference simulations actually performed (as opposed to
    /// cache hits). With correct exactly-once sharing this equals
    /// [`StReferenceCache::len`] even under concurrency.
    pub fn reference_runs(&self) -> u64 {
        self.reference_runs.load(Ordering::Relaxed)
    }

    /// Number of distinct `(benchmark, configuration)` references requested.
    pub fn len(&self) -> usize {
        self.curves
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether no reference has been requested yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn record_st_curve(
    benchmark: &str,
    config: &SmtConfig,
    scale: RunScale,
) -> Result<StCurve, SimError> {
    let mut st_config = config.clone();
    st_config.num_threads = 1;
    st_config.fetch_policy = FetchPolicyKind::Icount;
    let trace = build_trace(benchmark, scale)?;
    let mut sim = SmtSimulator::new(st_config, vec![trace])?;
    let max_cycles = scale.sim_options().max_cycles;
    sim.warm_up(scale.warmup_instructions, max_cycles);
    let interval = (scale.instructions_per_thread / 64).max(256);
    let mut cycles = Vec::new();
    let mut next_checkpoint = interval;
    let budget = scale.instructions_per_thread;
    while sim.stats().threads[0].committed_instructions < budget && sim.cycle() < max_cycles {
        sim.step();
        let committed = sim.stats().threads[0].committed_instructions;
        while committed >= next_checkpoint {
            // `stats().cycles` is only finalized by `run()`; when stepping
            // manually the live measured count is the source of truth.
            cycles.push(sim.measured_cycles());
            next_checkpoint += interval;
        }
    }
    let committed = sim.stats().threads[0].committed_instructions;
    if committed < budget {
        // A truncated curve would yield bogus (even zero) reference CPIs and
        // silently corrupt STP/ANTT; fail loudly so the resilient engine can
        // classify the cell as deadline-exceeded instead.
        return Err(SimError::deadline_exceeded(format!(
            "simulated-cycle cap of {max_cycles} cycles hit before the single-thread \
             reference for '{benchmark}' committed its {budget}-instruction budget \
             (committed {committed})"
        )));
    }
    Ok(StCurve {
        interval,
        cycles,
        total_instructions: committed,
        total_cycles: sim.measured_cycles(),
    })
}

/// The STP/ANTT outcome of running one multiprogram workload under one policy.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct WorkloadResult {
    /// Workload name (benchmarks joined with dashes).
    pub workload: String,
    /// The fetch policy evaluated.
    pub policy: FetchPolicyKind,
    /// System throughput (higher is better).
    pub stp: f64,
    /// Average normalized turnaround time (lower is better).
    pub antt: f64,
    /// Per-thread IPC in the multithreaded run.
    pub per_thread_ipc: Vec<f64>,
    /// Per-thread single-threaded reference IPC at the same instruction counts.
    pub per_thread_st_ipc: Vec<f64>,
    /// Raw multithreaded statistics.
    pub mt_stats: MachineStats,
}

/// Evaluates one workload under one policy on the baseline configuration.
///
/// # Errors
///
/// Returns an error for unknown benchmarks or invalid configurations.
pub fn evaluate_workload(
    benchmarks: &[&str],
    policy: FetchPolicyKind,
    scale: RunScale,
) -> Result<WorkloadResult, SimError> {
    let config = SmtConfig::baseline(benchmarks.len());
    let cache = StReferenceCache::new();
    evaluate_workload_with(benchmarks, policy, &config, scale, &cache)
}

/// Evaluates one workload under one policy on an explicit configuration, reusing
/// the shared `cache` for the single-threaded reference runs.
///
/// # Errors
///
/// Returns an error for unknown benchmarks or invalid configurations.
pub fn evaluate_workload_with<S: AsRef<str>>(
    benchmarks: &[S],
    policy: FetchPolicyKind,
    config: &SmtConfig,
    scale: RunScale,
    cache: &StReferenceCache,
) -> Result<WorkloadResult, SimError> {
    let benchmarks: Vec<&str> = benchmarks.iter().map(AsRef::as_ref).collect();
    let mt_stats = run_multiprogram(&benchmarks, policy, config, scale)?;
    let (st_cpis, mt_cpis) = st_mt_cpis(&benchmarks, &mt_stats, config, scale, cache)?;
    Ok(WorkloadResult {
        workload: benchmarks.join("-"),
        policy,
        stp: metrics::stp(&st_cpis, &mt_cpis),
        antt: metrics::antt(&st_cpis, &mt_cpis),
        per_thread_ipc: mt_cpis.iter().map(|c| 1.0 / c).collect(),
        per_thread_st_ipc: st_cpis.iter().map(|c| 1.0 / c).collect(),
        mt_stats,
    })
}

/// Per-thread single-threaded and multithreaded CPIs of a finished
/// multiprogram run, in workload order (`committed.max(1)` guards threads
/// that never retired an instruction).
fn st_mt_cpis(
    benchmarks: &[&str],
    mt_stats: &MachineStats,
    config: &SmtConfig,
    scale: RunScale,
    cache: &StReferenceCache,
) -> Result<(Vec<f64>, Vec<f64>), SimError> {
    let mut st_cpis = Vec::with_capacity(benchmarks.len());
    let mut mt_cpis = Vec::with_capacity(benchmarks.len());
    for (i, benchmark) in benchmarks.iter().enumerate() {
        let committed = mt_stats.threads[i].committed_instructions.max(1);
        mt_cpis.push(mt_stats.cycles as f64 / committed as f64);
        st_cpis.push(cache.st_cpi(benchmark, config, scale, committed)?);
    }
    Ok((st_cpis, mt_cpis))
}

/// Cache of serialized warm checkpoints keyed by workload, configuration and
/// warm-prefix length, shared across the worker threads of the parallel
/// experiment engine exactly like [`StReferenceCache`]: each distinct
/// `(workload, configuration, prefix)` warm prefix is fast-forwarded **once**
/// and every grid cell branches from the captured [`SimCheckpoint`] instead
/// of re-running the prefix.
///
/// Functional fast-forward never consults the fetch policy (it is pure warm
/// state: caches, TLBs, predictors, LLSR), so the key normalizes the fetch
/// policy away and all policies of a grid share one checkpoint per workload.
#[derive(Default)]
pub struct CheckpointCache {
    #[allow(clippy::type_complexity)]
    cells: Mutex<HashMap<CheckpointKey, Arc<OnceLock<Result<SimCheckpoint, SimError>>>>>,
    captures: AtomicU64,
    requests: AtomicU64,
}

/// Cache key: the workload's benchmarks in thread order, the full normalized
/// configuration (fetch policy erased — fast-forward is policy-independent),
/// the trace seed and the warm-prefix length.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct CheckpointKey {
    benchmarks: Vec<String>,
    config: SmtConfig,
    seed: u64,
    prefix_instructions: u64,
}

impl CheckpointCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the warm checkpoint for `benchmarks` on `config` after
    /// fast-forwarding `scale.warmup_instructions` per thread, capturing it on
    /// first use. Concurrent callers asking for the same prefix block until
    /// the one elected fast-forward finishes.
    ///
    /// # Errors
    ///
    /// Propagates simulation construction and checkpoint capture errors.
    pub fn warmed(
        &self,
        benchmarks: &[&str],
        config: &SmtConfig,
        scale: RunScale,
    ) -> Result<SimCheckpoint, SimError> {
        let mut norm = config.clone();
        norm.num_threads = benchmarks.len();
        norm.fetch_policy = FetchPolicyKind::Icount;
        let key = CheckpointKey {
            benchmarks: benchmarks.iter().map(|b| b.to_string()).collect(),
            config: norm.clone(),
            seed: scale.seed,
            prefix_instructions: scale.warmup_instructions,
        };
        self.requests.fetch_add(1, Ordering::Relaxed);
        let cell = {
            let mut cells = self.cells.lock().unwrap_or_else(PoisonError::into_inner);
            Arc::clone(cells.entry(key).or_default())
        };
        let outcome = cell.get_or_init(|| {
            self.captures.fetch_add(1, Ordering::Relaxed);
            capture_warm_checkpoint(benchmarks, &norm, scale)
        });
        match outcome {
            Ok(ck) => Ok(ck.clone()),
            Err(e) => Err(e.clone()),
        }
    }

    /// Number of warm prefixes actually fast-forwarded and captured.
    pub fn captures(&self) -> u64 {
        self.captures.load(Ordering::Relaxed)
    }

    /// Number of requests served from an already-captured checkpoint.
    pub fn hits(&self) -> u64 {
        self.requests.load(Ordering::Relaxed) - self.captures()
    }
}

fn capture_warm_checkpoint(
    benchmarks: &[&str],
    config: &SmtConfig,
    scale: RunScale,
) -> Result<SimCheckpoint, SimError> {
    let traces = benchmarks
        .iter()
        .map(|b| build_trace(b, scale))
        .collect::<Result<Vec<_>, _>>()?;
    let mut sim = SmtSimulator::new(config.clone(), traces)?;
    sim.fast_forward(scale.warmup_instructions);
    sim.checkpoint(scale.seed)
}

/// The sampled-mode outcome of one workload × policy cell: point estimates
/// plus per-metric 95% confidence intervals from the between-window variance.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SampledWorkloadResult {
    /// Workload name (benchmarks joined with dashes).
    pub workload: String,
    /// The fetch policy evaluated.
    pub policy: FetchPolicyKind,
    /// System throughput estimate (ratio estimator over windows).
    pub stp: MetricEstimate,
    /// Average normalized turnaround time: the mean is the ratio-estimator
    /// point estimate; the interval is indicative only (derived from
    /// per-window ANTT samples, which are ratio-biased individually).
    pub antt: MetricEstimate,
    /// Aggregate (all-thread) IPC estimate.
    pub total_ipc: MetricEstimate,
    /// Per-thread IPC estimates, in workload order.
    pub per_thread_ipc: Vec<MetricEstimate>,
    /// Per-thread single-threaded reference IPC at the extrapolated
    /// instruction counts.
    pub per_thread_st_ipc: Vec<f64>,
    /// Number of measurement windows that contributed samples.
    pub windows: u32,
    /// Fraction of the instruction budget executed in detailed mode.
    pub detailed_fraction: f64,
}

/// Evaluates one workload under one policy in sampled mode: the warm prefix
/// comes from the shared `checkpoints` cache, the run interleaves functional
/// fast-forward with detailed measurement windows per `sampling`, and
/// STP/ANTT are extrapolated with the paper's methodology at the estimated
/// per-thread instruction counts.
///
/// An exact run stops when the first thread commits the budget; the sampled
/// equivalent extrapolates each co-runner's committed count as
/// `budget × ipc_i / max_j ipc_j` and takes the single-threaded reference
/// CPIs at those counts from the shared `cache`, exactly as the exact
/// evaluation does at its measured counts.
///
/// # Errors
///
/// Returns an error for unknown benchmarks, invalid configurations or
/// cadences, and for runs that measured no window before the cycle cap.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_workload_sampled<S: AsRef<str>>(
    benchmarks: &[S],
    policy: FetchPolicyKind,
    config: &SmtConfig,
    scale: RunScale,
    sampling: &SamplingConfig,
    cache: &StReferenceCache,
    checkpoints: &CheckpointCache,
) -> Result<SampledWorkloadResult, SimError> {
    let benchmarks: Vec<&str> = benchmarks.iter().map(AsRef::as_ref).collect();
    let mut mt_config = config.clone();
    mt_config.num_threads = benchmarks.len();
    mt_config.fetch_policy = policy;
    let traces = benchmarks
        .iter()
        .map(|b| build_trace(b, scale))
        .collect::<Result<Vec<_>, _>>()?;
    let mut sim = SmtSimulator::new(mt_config, traces)?;
    if scale.warmup_instructions > 0 {
        let checkpoint = checkpoints.warmed(&benchmarks, config, scale)?;
        sim.restore_checkpoint(&checkpoint)?;
    }
    let run = sim.run_sampled(scale.sim_options(), sampling)?;
    if run.window_cycles.is_empty() {
        return Err(SimError::deadline_exceeded(
            "sampled run measured no window before the cycle cap",
        ));
    }

    let budget = scale.instructions_per_thread;
    let max_ipc = run
        .estimate
        .per_thread_ipc
        .iter()
        .map(|e| e.mean)
        .fold(0.0f64, f64::max);
    let mut per_thread_st_ipc = Vec::with_capacity(benchmarks.len());
    let mut st_cpis = Vec::with_capacity(benchmarks.len());
    for (i, benchmark) in benchmarks.iter().enumerate() {
        // Extrapolated committed count when the fastest thread hits the
        // budget (the exact run's stop criterion).
        let ipc = run.estimate.per_thread_ipc[i].mean;
        let extrapolated = if max_ipc > 0.0 {
            ((budget as f64 * ipc / max_ipc) as u64).clamp(1, budget)
        } else {
            budget
        };
        let st_cpi = cache.st_cpi(benchmark, config, scale, extrapolated)?;
        per_thread_st_ipc.push(1.0 / st_cpi);
        st_cpis.push(st_cpi);
    }

    // STP = Σ_i (mt_ipc_i / st_ipc_i): ratio estimator over windows with the
    // single-threaded references held fixed (Σ_w Σ_i C_iw·st_cpi_i / Σ_w T_w).
    let stp_pairs: Vec<(f64, f64)> = run
        .window_thread_committed
        .iter()
        .zip(&run.window_cycles)
        .map(|(committed, &cycles)| {
            let num: f64 = committed
                .iter()
                .zip(&st_cpis)
                .map(|(&c, &st_cpi)| c as f64 * st_cpi)
                .sum();
            (num, cycles as f64)
        })
        .collect();
    let stp = MetricEstimate::from_ratio(&stp_pairs);

    // ANTT point estimate from the per-thread ratio estimates; the interval
    // comes from per-window ANTT samples (indicative: per-window ratios are
    // individually biased, but their spread bounds the between-window noise).
    let antt_point = st_cpis
        .iter()
        .zip(&run.estimate.per_thread_ipc)
        .map(|(&st_cpi, estimate)| {
            let ipc = estimate.mean.max(f64::MIN_POSITIVE);
            (1.0 / ipc) / st_cpi
        })
        .sum::<f64>()
        / benchmarks.len() as f64;
    let antt_samples: Vec<f64> = run
        .window_thread_committed
        .iter()
        .zip(&run.window_cycles)
        .map(|(committed, &cycles)| {
            committed
                .iter()
                .zip(&st_cpis)
                .map(|(&c, &st_cpi)| (cycles as f64 / c.max(1) as f64) / st_cpi)
                .sum::<f64>()
                / committed.len() as f64
        })
        .collect();
    let antt = MetricEstimate {
        mean: antt_point,
        ci95: MetricEstimate::from_samples(&antt_samples).ci95,
    };

    Ok(SampledWorkloadResult {
        workload: benchmarks.join("-"),
        policy,
        stp,
        antt,
        total_ipc: run.estimate.total_ipc,
        per_thread_ipc: run.estimate.per_thread_ipc,
        per_thread_st_ipc,
        windows: run.estimate.windows,
        detailed_fraction: run.estimate.detailed_fraction,
    })
}

/// Scale of the single-thread probe runs behind [`mlp_intensity`]: long
/// enough to warm the predictors, short enough to be negligible next to the
/// measured runs.
fn probe_scale(seed: u64) -> RunScale {
    RunScale {
        instructions_per_thread: 2_000,
        warmup_instructions: 500,
        seed,
        max_cycles: None,
    }
}

/// Estimates a benchmark's MLP intensity — long-latency loads per
/// kilo-instruction times measured MLP — from a short single-thread probe run
/// on `core_config`. This is the signal
/// [`AllocationPolicyKind::MlpBalanced`] balances across cores; it comes from
/// the same LLSR/MLP-predictor machinery the fetch policies use.
///
/// # Errors
///
/// Returns [`SimError::UnknownBenchmark`] for unknown benchmarks.
pub fn mlp_intensity(benchmark: &str, core_config: &SmtConfig, seed: u64) -> Result<f64, SimError> {
    let stats = run_single_thread(benchmark, core_config, probe_scale(seed))?;
    let t = &stats.threads[0];
    Ok(t.lll_per_kilo_instruction() * t.measured_mlp())
}

/// The STP/ANTT outcome of running one multiprogram workload on a chip under
/// one (fetch policy, thread-to-core allocation) pair.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ChipWorkloadResult {
    /// Workload name (benchmarks joined with dashes, in workload order).
    pub workload: String,
    /// The per-core fetch policy evaluated.
    pub policy: FetchPolicyKind,
    /// The thread-to-core allocation policy evaluated.
    pub allocation: AllocationPolicyKind,
    /// Number of cores on the chip.
    pub num_cores: u64,
    /// Benchmarks per core after allocation (slots joined with `+`).
    pub core_assignments: Vec<String>,
    /// System throughput (higher is better), normalized per thread against a
    /// run alone on one core of the chip.
    pub stp: f64,
    /// Average normalized turnaround time (lower is better).
    pub antt: f64,
    /// Per-thread IPC in the chip run, in workload order.
    pub per_thread_ipc: Vec<f64>,
    /// Per-thread single-threaded reference IPC at the same instruction
    /// counts, in workload order.
    pub per_thread_st_ipc: Vec<f64>,
    /// Aggregate IPC of each core.
    pub per_core_ipc: Vec<f64>,
    /// Each core's contribution to the chip STP (the weighted speedups of
    /// its resident threads; sums to [`ChipWorkloadResult::stp`]).
    pub per_core_stp: Vec<f64>,
    /// Raw chip statistics.
    pub chip_stats: ChipStats,
}

/// Evaluates one workload on a chip under one (fetch policy, allocation)
/// pair, probing each benchmark's MLP intensity first (see
/// [`mlp_intensity`]).
///
/// # Errors
///
/// Returns an error for unknown benchmarks, invalid configurations, or a
/// workload that does not fill the chip's `num_cores x threads_per_core`
/// geometry.
pub fn evaluate_chip_workload<S: AsRef<str>>(
    benchmarks: &[S],
    policy: FetchPolicyKind,
    allocation: AllocationPolicyKind,
    chip: &ChipConfig,
    scale: RunScale,
    cache: &StReferenceCache,
) -> Result<ChipWorkloadResult, SimError> {
    let benchmarks: Vec<&str> = benchmarks.iter().map(AsRef::as_ref).collect();
    let intensities = benchmarks
        .iter()
        .map(|b| mlp_intensity(b, &chip.core, scale.seed))
        .collect::<Result<Vec<_>, _>>()?;
    evaluate_chip_workload_with_intensities(
        &benchmarks,
        &intensities,
        policy,
        allocation,
        chip,
        scale,
        cache,
    )
}

/// [`evaluate_chip_workload`] with precomputed per-thread MLP intensities
/// (the parallel experiment engine probes each distinct benchmark once and
/// shares the results across cells).
///
/// # Errors
///
/// Same as [`evaluate_chip_workload`].
pub fn evaluate_chip_workload_with_intensities<S: AsRef<str>>(
    benchmarks: &[S],
    intensities: &[f64],
    policy: FetchPolicyKind,
    allocation: AllocationPolicyKind,
    chip: &ChipConfig,
    scale: RunScale,
    cache: &StReferenceCache,
) -> Result<ChipWorkloadResult, SimError> {
    let benchmarks: Vec<&str> = benchmarks.iter().map(AsRef::as_ref).collect();
    let chip_config = chip.clone().with_policy(policy);
    let (assignment, traces) =
        chip_placement(&benchmarks, intensities, allocation, &chip_config, scale)?;
    let mut sim = ChipSimulator::new(chip_config.clone(), traces)?;
    let chip_stats = sim.run(scale.sim_options());
    let cpis = chip_cpis(
        &benchmarks,
        &assignment,
        &chip_stats,
        &chip_config,
        scale,
        cache,
    )?;
    Ok(ChipWorkloadResult {
        workload: benchmarks.join("-"),
        policy,
        allocation,
        num_cores: chip_config.num_cores as u64,
        core_assignments: join_core_assignments(&assignment, &benchmarks),
        stp: metrics::stp(&cpis.st_cpis, &cpis.mt_cpis),
        antt: metrics::antt(&cpis.st_cpis, &cpis.mt_cpis),
        per_thread_ipc: cpis.mt_cpis.iter().map(|c| 1.0 / c).collect(),
        per_thread_st_ipc: cpis.st_cpis.iter().map(|c| 1.0 / c).collect(),
        per_core_ipc: chip_stats.per_core_ipc(),
        per_core_stp: metrics::per_core_stp(&chip_stats, &cpis.st_flat, &cpis.mt_flat),
        chip_stats,
    })
}

/// A chip placement: `assignment[core] = workload thread indices`, plus the
/// per-core trace sources in the same order.
type ChipPlacement = (Vec<Vec<usize>>, Vec<Vec<Box<dyn TraceSource>>>);

/// Allocates a chip workload's threads onto cores and builds the per-core
/// trace sources (the placement every chip evaluation starts from).
fn chip_placement(
    benchmarks: &[&str],
    intensities: &[f64],
    allocation: AllocationPolicyKind,
    chip_config: &ChipConfig,
    scale: RunScale,
) -> Result<ChipPlacement, SimError> {
    if intensities.len() != benchmarks.len() {
        return Err(SimError::invalid_workload(
            "one MLP intensity per workload thread required",
        ));
    }
    let specs: Vec<ThreadSpec> = benchmarks
        .iter()
        .zip(intensities)
        .map(|(b, &i)| ThreadSpec::new(*b, i))
        .collect();
    let assignment = build_allocation_policy(allocation).allocate(
        &specs,
        chip_config.num_cores,
        chip_config.core.num_threads,
    )?;
    let traces = assignment
        .iter()
        .map(|slots| {
            slots
                .iter()
                .map(|&ti| build_trace(benchmarks[ti], scale))
                .collect::<Result<Vec<_>, _>>()
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((assignment, traces))
}

/// Per-thread CPIs of a finished chip run, in workload order (`st_cpis` /
/// `mt_cpis`) and in canonical `(core, slot)` order (`st_flat` / `mt_flat`,
/// for the per-core STP split).
struct ChipCpis {
    st_cpis: Vec<f64>,
    mt_cpis: Vec<f64>,
    st_flat: Vec<f64>,
    mt_flat: Vec<f64>,
}

fn chip_cpis(
    benchmarks: &[&str],
    assignment: &[Vec<usize>],
    chip_stats: &ChipStats,
    chip_config: &ChipConfig,
    scale: RunScale,
    cache: &StReferenceCache,
) -> Result<ChipCpis, SimError> {
    // The single-threaded reference is "alone on one core of this chip": the
    // core's private levels with the whole shared LLC to itself.
    let mut st_config = chip_config.core.clone();
    st_config.l3 = chip_config.shared_llc;

    let n = benchmarks.len();
    let mut cpis = ChipCpis {
        st_cpis: vec![0.0f64; n],
        mt_cpis: vec![0.0f64; n],
        st_flat: Vec::with_capacity(n),
        mt_flat: Vec::with_capacity(n),
    };
    for (core, slots) in assignment.iter().enumerate() {
        for (slot, &ti) in slots.iter().enumerate() {
            let committed = chip_stats.cores[core].threads[slot]
                .committed_instructions
                .max(1);
            cpis.mt_cpis[ti] = chip_stats.cycles as f64 / committed as f64;
            cpis.st_cpis[ti] = cache.st_cpi(benchmarks[ti], &st_config, scale, committed)?;
            cpis.st_flat.push(cpis.st_cpis[ti]);
            cpis.mt_flat.push(cpis.mt_cpis[ti]);
        }
    }
    Ok(cpis)
}

/// Renders a placement as per-core benchmark lists (`"mcf+gcc"`).
fn join_core_assignments(assignment: &[Vec<usize>], benchmarks: &[&str]) -> Vec<String> {
    assignment
        .iter()
        .map(|slots| {
            slots
                .iter()
                .map(|&ti| benchmarks[ti])
                .collect::<Vec<_>>()
                .join("+")
        })
        .collect()
}

/// The STP/ANTT outcome of running one multiprogram workload under the
/// adaptive policy engine (machine level, or chip level when
/// [`AdaptiveWorkloadResult::num_cores`] is set).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct AdaptiveWorkloadResult {
    /// Workload name (benchmarks joined with dashes).
    pub workload: String,
    /// The policy selector evaluated.
    pub selector: SelectorKind,
    /// The candidate policy set evaluated (the machine starts on the first).
    pub candidates: Vec<FetchPolicyKind>,
    /// System throughput (higher is better).
    pub stp: f64,
    /// Average normalized turnaround time (lower is better).
    pub antt: f64,
    /// Per-thread IPC in the adaptive run (workload order).
    pub per_thread_ipc: Vec<f64>,
    /// Per-thread single-threaded reference IPC at the same instruction counts.
    pub per_thread_st_ipc: Vec<f64>,
    /// Fraction of completed intervals each policy was active (chip runs:
    /// averaged over cores).
    pub policy_residency: Vec<PolicyResidency>,
    /// Chip runs: number of cores.
    pub num_cores: Option<u64>,
    /// Chip runs: the thread-to-core allocation policy used.
    pub allocation: Option<AllocationPolicyKind>,
    /// Chip runs: benchmarks per core after allocation (slots joined with `+`).
    pub core_assignments: Option<Vec<String>>,
    /// Chip runs: aggregate IPC of each core.
    pub per_core_ipc: Option<Vec<f64>>,
    /// Chip runs: each core's contribution to the chip STP.
    pub per_core_stp: Option<Vec<f64>>,
    /// Raw statistics of the run (chip runs: flattened to `(core, thread)`
    /// order).
    pub mt_stats: MachineStats,
}

/// Evaluates one workload under one adaptive-engine configuration on an
/// explicit machine configuration, reusing the shared `cache` for the
/// single-threaded reference runs. STP/ANTT use the same ICOUNT
/// single-thread references as the static-policy evaluations, so adaptive
/// and static cells of one report are directly comparable.
///
/// # Errors
///
/// Returns an error for unknown benchmarks or invalid configurations.
pub fn evaluate_adaptive_workload<S: AsRef<str>>(
    benchmarks: &[S],
    adaptive: &AdaptiveConfig,
    config: &SmtConfig,
    scale: RunScale,
    cache: &StReferenceCache,
) -> Result<AdaptiveWorkloadResult, SimError> {
    let benchmarks: Vec<&str> = benchmarks.iter().map(AsRef::as_ref).collect();
    let (mt_stats, policy_residency) =
        run_multiprogram_adaptive(&benchmarks, adaptive, config, scale)?;
    let (st_cpis, mt_cpis) = st_mt_cpis(&benchmarks, &mt_stats, config, scale, cache)?;
    Ok(AdaptiveWorkloadResult {
        workload: benchmarks.join("-"),
        selector: adaptive.selector,
        candidates: adaptive.candidates.clone(),
        stp: metrics::stp(&st_cpis, &mt_cpis),
        antt: metrics::antt(&st_cpis, &mt_cpis),
        per_thread_ipc: mt_cpis.iter().map(|c| 1.0 / c).collect(),
        per_thread_st_ipc: st_cpis.iter().map(|c| 1.0 / c).collect(),
        policy_residency,
        num_cores: None,
        allocation: None,
        core_assignments: None,
        per_core_ipc: None,
        per_core_stp: None,
        mt_stats,
    })
}

/// Evaluates one workload on a chip whose cores run the adaptive policy
/// engine, with precomputed per-thread MLP intensities for the allocation
/// policy (see [`evaluate_chip_workload_with_intensities`]).
///
/// # Errors
///
/// Same as [`evaluate_chip_workload`], plus invalid adaptive configurations.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_adaptive_chip_workload_with_intensities<S: AsRef<str>>(
    benchmarks: &[S],
    intensities: &[f64],
    adaptive: &AdaptiveConfig,
    allocation: AllocationPolicyKind,
    chip: &ChipConfig,
    scale: RunScale,
    cache: &StReferenceCache,
) -> Result<AdaptiveWorkloadResult, SimError> {
    let benchmarks: Vec<&str> = benchmarks.iter().map(AsRef::as_ref).collect();
    let chip_config = chip.clone();
    let (assignment, traces) =
        chip_placement(&benchmarks, intensities, allocation, &chip_config, scale)?;
    let mut sim = ChipSimulator::new_adaptive(chip_config.clone(), traces, adaptive.clone())?;
    let chip_stats = sim.run(scale.sim_options());
    let policy_residency = merge_core_residencies(
        (0..chip_stats.num_cores())
            .map(|core| {
                sim.policy_residency(core)
                    .expect("adaptive chip reports residency")
            })
            .collect(),
    );
    let cpis = chip_cpis(
        &benchmarks,
        &assignment,
        &chip_stats,
        &chip_config,
        scale,
        cache,
    )?;
    Ok(AdaptiveWorkloadResult {
        workload: benchmarks.join("-"),
        selector: adaptive.selector,
        candidates: adaptive.candidates.clone(),
        stp: metrics::stp(&cpis.st_cpis, &cpis.mt_cpis),
        antt: metrics::antt(&cpis.st_cpis, &cpis.mt_cpis),
        per_thread_ipc: cpis.mt_cpis.iter().map(|c| 1.0 / c).collect(),
        per_thread_st_ipc: cpis.st_cpis.iter().map(|c| 1.0 / c).collect(),
        policy_residency,
        num_cores: Some(chip_config.num_cores as u64),
        allocation: Some(allocation),
        core_assignments: Some(join_core_assignments(&assignment, &benchmarks)),
        per_core_ipc: Some(chip_stats.per_core_ipc()),
        per_core_stp: Some(metrics::per_core_stp(
            &chip_stats,
            &cpis.st_flat,
            &cpis.mt_flat,
        )),
        mt_stats: metrics::flatten_chip_stats(&chip_stats),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_run_completes_budget() {
        let scale = RunScale::tiny();
        let cfg = SmtConfig::baseline(1);
        let stats = run_single_thread("gcc", &cfg, scale).unwrap();
        assert!(stats.threads[0].committed_instructions >= scale.instructions_per_thread);
        assert!(stats.cycles > 0);
        let ipc = stats.threads[0].ipc(stats.cycles);
        assert!(ipc > 0.1 && ipc <= 4.0, "IPC {ipc} out of range");
    }

    #[test]
    fn st_cache_recovers_from_a_poisoned_lock() {
        let cache = StReferenceCache::new();
        let scale = RunScale::tiny();
        let cfg = SmtConfig::baseline(2);
        let before = cache
            .st_cpi("gcc", &cfg, scale, scale.instructions_per_thread)
            .unwrap();
        // Poison the map mutex the way a panicking engine cell would: a
        // thread dies while holding it.
        let result = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = cache.curves.lock().unwrap();
                    panic!("poison the cache lock");
                })
                .join()
        });
        assert!(result.is_err(), "the poisoning thread must have panicked");
        // The cache keeps serving: same cached value, no new reference run.
        let runs = cache.reference_runs();
        let after = cache
            .st_cpi("gcc", &cfg, scale, scale.instructions_per_thread)
            .unwrap();
        assert_eq!(before.to_bits(), after.to_bits());
        assert_eq!(cache.reference_runs(), runs);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn mlp_intensive_benchmark_has_lower_ipc_than_ilp() {
        let scale = RunScale::test();
        let cfg = SmtConfig::baseline(1);
        let gcc = run_single_thread("gcc", &cfg, scale).unwrap();
        let mcf = run_single_thread("mcf", &cfg, scale).unwrap();
        let gcc_ipc = gcc.threads[0].ipc(gcc.cycles);
        let mcf_ipc = mcf.threads[0].ipc(mcf.cycles);
        assert!(
            mcf_ipc < gcc_ipc,
            "mcf (memory bound, {mcf_ipc}) should be slower than gcc ({gcc_ipc})"
        );
    }

    #[test]
    fn multiprogram_run_stops_at_first_thread_budget() {
        let scale = RunScale::tiny();
        let cfg = SmtConfig::baseline(2);
        let stats =
            run_multiprogram(&["gcc", "gap"], FetchPolicyKind::Icount, &cfg, scale).unwrap();
        let max = stats
            .threads
            .iter()
            .map(|t| t.committed_instructions)
            .max()
            .unwrap();
        assert!(max >= scale.instructions_per_thread);
    }

    #[test]
    fn evaluate_workload_produces_sane_metrics() {
        let r =
            evaluate_workload(&["gcc", "gap"], FetchPolicyKind::Icount, RunScale::tiny()).unwrap();
        assert!(
            r.stp > 0.2 && r.stp <= 2.0 + 1e-9,
            "STP {} out of range",
            r.stp
        );
        assert!(r.antt >= 0.9, "ANTT {} should show some slowdown", r.antt);
        assert_eq!(r.per_thread_ipc.len(), 2);
        assert_eq!(r.workload, "gcc-gap");
    }

    #[test]
    fn st_cache_reuses_reference_runs() {
        let cache = StReferenceCache::new();
        let cfg = SmtConfig::baseline(2);
        let scale = RunScale::tiny();
        let a = cache.st_cpi("gcc", &cfg, scale, 1_000).unwrap();
        let b = cache.st_cpi("gcc", &cfg, scale, 1_000).unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.reference_runs(), 1);
        let c = cache.st_cpi("gcc", &cfg, scale, 2_000).unwrap();
        assert!(c > 0.0);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.reference_runs(), 1);
    }

    #[test]
    fn st_cache_separates_any_config_or_scale_difference() {
        // The key is the full normalized config + scale, so knobs outside the
        // classic sweep set (fetch width, MSHRs, warm-up) must not alias.
        let cache = StReferenceCache::new();
        let scale = RunScale::tiny();
        let baseline = SmtConfig::baseline(2);
        let mut narrow_fetch = baseline.clone();
        narrow_fetch.fetch_width = 2;
        let mut few_mshrs = baseline.clone();
        few_mshrs.max_outstanding_misses = 1;
        let mut long_warmup = scale;
        long_warmup.warmup_instructions += 500;
        cache.st_cpi("gcc", &baseline, scale, 1_000).unwrap();
        cache.st_cpi("gcc", &narrow_fetch, scale, 1_000).unwrap();
        cache.st_cpi("gcc", &few_mshrs, scale, 1_000).unwrap();
        cache.st_cpi("gcc", &baseline, long_warmup, 1_000).unwrap();
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.reference_runs(), 4);
        // Differences the single-thread normalization erases (thread count,
        // fetch policy) do share an entry.
        let four_thread = SmtConfig::baseline(4).with_policy(FetchPolicyKind::MlpFlush);
        cache.st_cpi("gcc", &four_thread, scale, 1_000).unwrap();
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn run_scale_serde_round_trips_and_validates() {
        use serde::{Deserialize as _, Serialize as _};
        let scale = RunScale::test();
        let round = RunScale::deserialize(&scale.serialize()).unwrap();
        assert_eq!(round, scale);
        assert!(RunScale::named("full").is_some());
        assert!(RunScale::named("galactic").is_none());
        let mut zero = RunScale::tiny();
        zero.instructions_per_thread = 0;
        assert!(zero.validate().is_err());
    }

    #[test]
    fn chip_workload_evaluation_produces_sane_metrics() {
        let chip = ChipConfig::baseline(2, 2);
        let cache = StReferenceCache::new();
        let r = evaluate_chip_workload(
            &["mcf", "swim", "gcc", "gap"],
            FetchPolicyKind::Icount,
            AllocationPolicyKind::RoundRobin,
            &chip,
            RunScale::tiny(),
            &cache,
        )
        .unwrap();
        assert_eq!(r.workload, "mcf-swim-gcc-gap");
        assert_eq!(r.num_cores, 2);
        assert_eq!(r.core_assignments, vec!["mcf+gcc", "swim+gap"]);
        assert_eq!(r.per_thread_ipc.len(), 4);
        assert_eq!(r.per_core_ipc.len(), 2);
        assert_eq!(r.per_core_stp.len(), 2);
        assert!(
            (r.per_core_stp.iter().sum::<f64>() - r.stp).abs() < 1e-9,
            "per-core STP must sum to the chip STP"
        );
        assert!(r.stp > 0.0 && r.stp <= 4.0 + 1e-9, "STP {}", r.stp);
        assert!(r.antt >= 0.9, "ANTT {}", r.antt);
        assert_eq!(r.chip_stats.num_cores(), 2);
    }

    #[test]
    fn chip_allocation_changes_placement_not_workload() {
        let chip = ChipConfig::baseline(2, 2);
        let cache = StReferenceCache::new();
        let scale = RunScale::tiny();
        let benchmarks = ["mcf", "swim", "gcc", "gap"];
        let rr = evaluate_chip_workload(
            &benchmarks,
            FetchPolicyKind::Icount,
            AllocationPolicyKind::RoundRobin,
            &chip,
            scale,
            &cache,
        )
        .unwrap();
        let ff = evaluate_chip_workload(
            &benchmarks,
            FetchPolicyKind::Icount,
            AllocationPolicyKind::FillFirst,
            &chip,
            scale,
            &cache,
        )
        .unwrap();
        let mb = evaluate_chip_workload(
            &benchmarks,
            FetchPolicyKind::Icount,
            AllocationPolicyKind::MlpBalanced,
            &chip,
            scale,
            &cache,
        )
        .unwrap();
        assert_eq!(rr.core_assignments, vec!["mcf+gcc", "swim+gap"]);
        assert_eq!(ff.core_assignments, vec!["mcf+swim", "gcc+gap"]);
        // mcf and swim are the MLP monsters: balanced placement separates them.
        assert_ne!(mb.core_assignments, ff.core_assignments);
        for r in [&rr, &ff, &mb] {
            assert_eq!(r.workload, "mcf-swim-gcc-gap");
        }
    }

    #[test]
    fn sampled_workload_evaluation_tracks_exact_and_shares_checkpoints() {
        let scale = RunScale {
            instructions_per_thread: 60_000,
            warmup_instructions: 10_000,
            seed: 42,
            max_cycles: None,
        };
        let config = SmtConfig::baseline(2);
        let cache = StReferenceCache::new();
        let checkpoints = CheckpointCache::new();
        let sampling = SamplingConfig {
            skip_instructions: 0,
            ff_instructions: 9_000,
            warm_instructions: 300,
            measure_instructions: 700,
            min_windows: 3,
        };
        let benchmarks = ["mcf", "gcc"];
        let exact =
            evaluate_workload_with(&benchmarks, FetchPolicyKind::Icount, &config, scale, &cache)
                .unwrap();
        let sampled = evaluate_workload_sampled(
            &benchmarks,
            FetchPolicyKind::Icount,
            &config,
            scale,
            &sampling,
            &cache,
            &checkpoints,
        )
        .unwrap();
        assert_eq!(sampled.workload, "mcf-gcc");
        assert!(sampled.windows >= 3, "windows {}", sampled.windows);
        assert!(sampled.detailed_fraction < 0.15);
        assert_eq!(checkpoints.captures(), 1);

        // The sampled estimates track the exact run within a loose band (the
        // tight ≤2% acceptance bound is asserted at 10x budgets in
        // crates/core/tests/sampling.rs; this short run just pins the
        // experiment-level plumbing).
        let exact_ipc: f64 = exact.per_thread_ipc.iter().sum();
        let err = (sampled.total_ipc.mean - exact_ipc).abs() / exact_ipc;
        assert!(
            err < 0.10,
            "sampled {} vs exact {exact_ipc}",
            sampled.total_ipc.mean
        );
        assert!(
            (sampled.stp.mean - exact.stp).abs() / exact.stp < 0.15,
            "sampled STP {} vs exact {}",
            sampled.stp.mean,
            exact.stp
        );
        assert!(
            (sampled.antt.mean - exact.antt).abs() / exact.antt < 0.15,
            "sampled ANTT {} vs exact {}",
            sampled.antt.mean,
            exact.antt
        );

        // A second policy on the same workload branches from the shared
        // checkpoint instead of re-running the warm prefix.
        let flush = evaluate_workload_sampled(
            &benchmarks,
            FetchPolicyKind::MlpFlush,
            &config,
            scale,
            &sampling,
            &cache,
            &checkpoints,
        )
        .unwrap();
        assert_eq!(checkpoints.captures(), 1);
        assert!(checkpoints.hits() >= 1);
        assert_eq!(flush.policy, FetchPolicyKind::MlpFlush);

        // Deterministic: re-evaluating reproduces the result bit for bit.
        let again = evaluate_workload_sampled(
            &benchmarks,
            FetchPolicyKind::Icount,
            &config,
            scale,
            &sampling,
            &cache,
            &checkpoints,
        )
        .unwrap();
        assert_eq!(again, sampled);
    }

    #[test]
    fn mlp_intensity_orders_memory_bound_benchmarks() {
        let cfg = SmtConfig::baseline(1);
        let mcf = mlp_intensity("mcf", &cfg, 42).unwrap();
        let gcc = mlp_intensity("gcc", &cfg, 42).unwrap();
        assert!(
            mcf > gcc,
            "mcf (memory bound, {mcf}) should out-rank gcc ({gcc})"
        );
    }

    #[test]
    fn st_curve_interpolation_is_monotone_enough() {
        let curve = StCurve {
            interval: 100,
            cycles: vec![150, 320, 470, 640],
            total_instructions: 400,
            total_cycles: 640,
        };
        assert!((curve.cpi_at(100) - 1.5).abs() < 1e-12);
        assert!((curve.cpi_at(200) - 1.6).abs() < 1e-12);
        assert!((curve.cpi_at(400) - 1.6).abs() < 1e-12);
        // Beyond the recorded range we fall back to the final totals.
        assert!(curve.cpi_at(800) > 0.0);
        assert!(curve.cpi_at(0) > 0.0);
    }
}
