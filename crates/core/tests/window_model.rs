//! Model-based tests for the struct-of-arrays instruction window: a naive
//! `VecDeque`-of-structs reference model is driven through random
//! fetch/dispatch/issue/complete/commit/squash sequences in lockstep with
//! [`OpWindow`], asserting identical observable state after every step — plus
//! a deterministic squash-at-wraparound regression test for the ring buffer.

use std::collections::VecDeque;

use proptest::prelude::*;

use smt_core::pipeline::window::{OpWindow, NO_DEP};
use smt_types::{OpFlags, TraceOp};

/// The naive all-in-one-struct reference entry (what the pre-SoA pipeline kept
/// in its `VecDeque<InFlight>`).
#[derive(Clone, Debug)]
struct RefEntry {
    seq: u64,
    op: TraceOp,
    frontend_ready_at: u64,
    done_at: u64,
    dispatched: bool,
    issued: bool,
    completed: bool,
    mispredicted: bool,
    predicted_taken: bool,
    src_dep_offsets: [u32; 2],
}

/// Reference model: program-order deque with front-to-back scans everywhere.
#[derive(Default)]
struct RefWindow {
    entries: VecDeque<RefEntry>,
}

impl RefWindow {
    fn first_undispatched_index(&self) -> usize {
        self.entries
            .iter()
            .position(|e| !e.dispatched)
            .unwrap_or(self.entries.len())
    }

    fn deps_ready(&self, idx: usize) -> bool {
        self.entries[idx].src_dep_offsets.iter().all(|&offset| {
            offset == NO_DEP
                || (offset as usize) > idx
                || self.entries[idx - offset as usize].completed
        })
    }

    fn resolve_dep_offsets(&self, idx: usize) -> [u32; 2] {
        let e = &self.entries[idx];
        let mut offsets = [NO_DEP; 2];
        for (out, dep) in offsets.iter_mut().zip(e.op.src_deps) {
            let Some(distance) = dep else { continue };
            if (distance as u64) >= e.seq {
                continue;
            }
            let producer_seq = e.seq - distance as u64;
            // Naive linear search, front to back.
            if let Some(pos) = self.entries.iter().position(|p| p.seq == producer_seq) {
                *out = (idx - pos) as u32;
            }
        }
        offsets
    }

    /// Dispatched, unissued, operands ready — in program order.
    fn issue_candidates(&self) -> Vec<u32> {
        (0..self.first_undispatched_index())
            .filter(|&i| !self.entries[i].issued && self.deps_ready(i))
            .map(|i| i as u32)
            .collect()
    }
}

/// Asserts that every observable column of `w` matches the reference deque.
fn assert_same_state(w: &OpWindow, r: &RefWindow) {
    assert_eq!(w.len(), r.entries.len());
    assert_eq!(w.is_empty(), r.entries.is_empty());
    assert_eq!(w.first_undispatched_index(), r.first_undispatched_index());
    for (i, e) in r.entries.iter().enumerate() {
        assert_eq!(w.seq_at(i), e.seq, "seq at {i}");
        assert_eq!(w.op_at(i), e.op, "op at {i}");
        assert_eq!(w.frontend_ready_at(i), e.frontend_ready_at, "ready at {i}");
        assert_eq!(w.done_at(i), e.done_at, "done_at at {i}");
        assert_eq!(w.src_dep_offsets_at(i), e.src_dep_offsets, "deps at {i}");
        let f = w.flags_at(i);
        assert_eq!(f.dispatched(), e.dispatched, "dispatched at {i}");
        assert_eq!(f.issued(), e.issued, "issued at {i}");
        assert_eq!(f.completed(), e.completed, "completed at {i}");
        assert_eq!(f.mispredicted(), e.mispredicted, "mispredicted at {i}");
        assert_eq!(f.predicted_taken(), e.predicted_taken, "ptaken at {i}");
        assert_eq!(w.deps_ready(i), r.deps_ready(i), "deps_ready at {i}");
        assert_eq!(
            w.position_of_seq(e.seq),
            Some(i),
            "position_of_seq {}",
            e.seq
        );
    }
}

/// One scripted action of the random driver. The parameter selects among the
/// currently legal targets, so every generated sequence is valid by
/// construction.
#[derive(Clone, Copy, Debug)]
enum Action {
    Fetch,
    Dispatch,
    Issue(u64),
    Complete(u64),
    Commit(u64),
    Squash(u64),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    (0u8..6, any::<u64>()).prop_map(|(kind, param)| match kind {
        0 => Action::Fetch,
        1 => Action::Dispatch,
        2 => Action::Issue(param),
        3 => Action::Complete(param),
        4 => Action::Commit(param),
        _ => Action::Squash(param),
    })
}

/// A deterministic little op generator so dependence resolution is exercised
/// with realistic producer distances.
fn op_for(seq: u64) -> TraceOp {
    let pc = 0x1000 + 4 * seq;
    match seq % 4 {
        0 => TraceOp::int_alu(pc).with_dep((seq % 3 + 1) as u32),
        1 => TraceOp::load(pc, 0x100 * seq).with_dep((seq % 5 + 1) as u32),
        2 => TraceOp::branch(pc, seq.is_multiple_of(2), pc + 0x40),
        _ => TraceOp::int_alu(pc)
            .with_dep(1)
            .with_dep((seq % 7 + 2) as u32),
    }
}

fn apply(action: Action, w: &mut OpWindow, r: &mut RefWindow, next_seq: &mut u64) {
    match action {
        Action::Fetch => {
            // Keep the window smaller than its (tiny) capacity so the ring
            // wraps many times per run.
            if w.len() == w.capacity() {
                return;
            }
            let seq = *next_seq;
            *next_seq += 1;
            let op = op_for(seq);
            let mut flags = OpFlags::default();
            flags.set_mispredicted(seq.is_multiple_of(11));
            flags.set_predicted_taken(seq.is_multiple_of(5));
            let ready_at = seq % 17;
            w.push_back(seq, op, ready_at, flags);
            r.entries.push_back(RefEntry {
                seq,
                op,
                frontend_ready_at: ready_at,
                done_at: u64::MAX,
                dispatched: false,
                issued: false,
                completed: false,
                mispredicted: seq.is_multiple_of(11),
                predicted_taken: seq.is_multiple_of(5),
                src_dep_offsets: [NO_DEP; 2],
            });
        }
        Action::Dispatch => {
            let idx = r.first_undispatched_index();
            if idx == r.entries.len() {
                return;
            }
            let expect = r.resolve_dep_offsets(idx);
            let offsets = w.resolve_dep_offsets(idx);
            assert_eq!(offsets, expect, "dep resolution diverged at {idx}");
            w.set_src_dep_offsets(idx, offsets);
            w.mark_dispatched(idx);
            let e = &mut r.entries[idx];
            e.src_dep_offsets = expect;
            e.dispatched = true;
        }
        Action::Issue(param) => {
            let expect = r.issue_candidates();
            let mut got = Vec::new();
            let start = w.issue_scan_start();
            w.collect_issue_candidates(start, &mut got);
            // The scan may resume after an all-issued prefix; candidates below
            // `start` cannot exist, so the full lists must agree.
            assert_eq!(got, expect, "issue candidates diverged");
            if expect.is_empty() {
                return;
            }
            let idx = expect[(param % expect.len() as u64) as usize] as usize;
            w.mark_issued(idx);
            w.set_done_at(idx, param % 1024);
            let e = &mut r.entries[idx];
            e.issued = true;
            e.done_at = param % 1024;
        }
        Action::Complete(param) => {
            let pending: Vec<usize> = (0..r.entries.len())
                .filter(|&i| r.entries[i].issued && !r.entries[i].completed)
                .collect();
            if pending.is_empty() {
                return;
            }
            let idx = pending[(param % pending.len() as u64) as usize];
            let seq = r.entries[idx].seq;
            // Completion events address instructions by sequence number.
            assert_eq!(w.position_of_seq(seq), Some(idx));
            w.flags_mut(idx).set_completed(true);
            r.entries[idx].completed = true;
        }
        Action::Commit(param) => {
            let width = param % 4 + 1;
            for _ in 0..width {
                let Some(front) = r.entries.front() else {
                    break;
                };
                if !(front.dispatched && front.issued && front.completed) {
                    break;
                }
                assert!(w.flags_at(0).commit_ready());
                w.pop_front();
                r.entries.pop_front();
            }
        }
        Action::Squash(param) => {
            if r.entries.is_empty() {
                return;
            }
            let keep_idx = (param % r.entries.len() as u64) as usize;
            let keep_up_to = r.entries[keep_idx].seq;
            while let Some(back) = r.entries.back() {
                if back.seq <= keep_up_to {
                    break;
                }
                let last = w.len() - 1;
                assert_eq!(w.seq_at(last), back.seq);
                w.pop_back();
                r.entries.pop_back();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SoA ring buffer and the naive deque-of-structs model agree on every
    /// observable after every random pipeline operation.
    #[test]
    fn op_window_matches_vecdeque_reference(
        actions in prop::collection::vec(action_strategy(), 1..600),
    ) {
        // Capacity 16 with up to 600 operations: the ring wraps repeatedly and
        // squashes regularly cross the wrap boundary.
        let mut w = OpWindow::new(16);
        let mut r = RefWindow::default();
        let mut next_seq = 1u64;
        for action in actions {
            apply(action, &mut w, &mut r, &mut next_seq);
            assert_same_state(&w, &r);
        }
        prop_assert!(w.position_of_seq(next_seq).is_none());
    }
}

/// The bitmap scan of `collect_issue_candidates` crosses 64-bit word
/// boundaries only in windows larger than one word; pin that path directly
/// with a production-sized (capacity 128) window, both head-aligned and with
/// the live region wrapping across the ring's end.
#[test]
fn issue_candidates_cross_bitmap_words() {
    for retire_first in [0usize, 100] {
        let mut w = OpWindow::new(128);
        let mut r = RefWindow::default();
        let mut next_seq = 1u64;
        // Optionally march the head forward so the live region starts at slot
        // 100 and wraps: fill, retire, then refill.
        for _ in 0..retire_first {
            apply(Action::Fetch, &mut w, &mut r, &mut next_seq);
            apply(Action::Dispatch, &mut w, &mut r, &mut next_seq);
            apply(Action::Issue(0), &mut w, &mut r, &mut next_seq);
            apply(Action::Complete(0), &mut w, &mut r, &mut next_seq);
            apply(Action::Commit(0), &mut w, &mut r, &mut next_seq);
        }
        assert!(w.is_empty());
        // 120 in-flight entries spanning two (aligned) or three (wrapped)
        // bitmap words; dispatch everything, then issue a scattered subset so
        // unissued bits survive in every word.
        for _ in 0..120 {
            apply(Action::Fetch, &mut w, &mut r, &mut next_seq);
        }
        for _ in 0..120 {
            apply(Action::Dispatch, &mut w, &mut r, &mut next_seq);
        }
        assert_eq!(w.len(), 120);
        for param in [0u64, 17, 63, 64, 65, 90, 118, 3, 77, 111, 40] {
            apply(Action::Issue(param), &mut w, &mut r, &mut next_seq);
        }
        let expect = r.issue_candidates();
        assert!(!expect.is_empty());
        let mut got = Vec::new();
        w.collect_issue_candidates(0, &mut got);
        assert_eq!(got, expect, "retire_first={retire_first}");
        assert_same_state(&w, &r);
    }
}

/// Regression: squashing a suffix whose physical slots straddle the ring's
/// wrap point must leave exactly the kept prefix, with cursors clamped.
#[test]
fn squash_across_ring_wraparound() {
    let mut w = OpWindow::new(8); // capacity 8
                                  // Fill, retire the first six, and refill: head sits at slot 6, and the
                                  // window's 8 entries occupy slots 6,7,0,1,2,3,4,5 — wrapping physically.
    for seq in 1..=8u64 {
        w.push_back(seq, TraceOp::int_alu(0x40 + seq), 0, OpFlags::default());
    }
    for i in 0..6 {
        w.mark_dispatched(i);
        w.mark_issued(i);
        w.flags_mut(i).set_completed(true);
    }
    for _ in 0..6 {
        w.pop_front();
    }
    for seq in 9..=14u64 {
        w.push_back(seq, TraceOp::int_alu(0x40 + seq), 0, OpFlags::default());
    }
    assert_eq!(w.len(), 8);
    // Dispatch and issue a few of the survivors so the squash crosses both
    // cursor positions and the wrap boundary.
    for i in 0..5 {
        w.mark_dispatched(i);
    }
    w.mark_issued(0);
    w.mark_issued(2);

    // Squash everything younger than seq 9: removes seqs 14..=10 whose slots
    // straddle the wrap point.
    while w.seq_at(w.len() - 1) > 9 {
        w.pop_back();
    }
    assert_eq!(w.len(), 3);
    let seqs: Vec<u64> = (0..w.len()).map(|i| w.seq_at(i)).collect();
    assert_eq!(seqs, vec![7, 8, 9]);
    // Cursors clamp to the shortened window: entries 0..3 stay dispatched
    // (dispatch cursor was at 5, now clamps to 3), and the issue scan resumes
    // at the unissued survivor (index 1).
    assert_eq!(w.first_undispatched_index(), 3);
    assert_eq!(w.issue_scan_start(), 1);
    let mut candidates = Vec::new();
    w.collect_issue_candidates(0, &mut candidates);
    assert_eq!(candidates, vec![1]);
    assert_eq!(w.position_of_seq(9), Some(2));
    assert_eq!(w.position_of_seq(10), None);

    // The freed slots are reusable: refill to capacity across the wrap again.
    for seq in 20..=24u64 {
        w.push_back(seq, TraceOp::int_alu(0x80 + seq), 0, OpFlags::default());
    }
    assert_eq!(w.len(), 8);
    assert_eq!(w.seq_at(3), 20);
    assert_eq!(w.position_of_seq(24), Some(7));
}
