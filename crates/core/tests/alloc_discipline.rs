//! Counting-allocator proof of the hot-path zero-allocation invariant.
//!
//! The static analyzer (`smt-analyze`, rule `hot-path-alloc`) keeps
//! allocating constructs out of the per-cycle pipeline code lexically; this
//! test closes the loop dynamically: once a simulator is warmed past its
//! high-water marks, stepping it must perform **zero** heap allocations,
//! for both the single-core [`SmtSimulator`] and the chip-level
//! [`ChipSimulator`], across the baseline and the paper's headline policy.
//!
//! Everything runs inside one `#[test]` function: the process-global
//! allocation counter would otherwise be polluted by concurrently running
//! tests.

#![cfg(not(miri))]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use smt_core::chip::ChipSimulator;
use smt_core::pipeline::SmtSimulator;
use smt_trace::{ScriptedTrace, TraceSource};
use smt_types::config::FetchPolicyKind;
use smt_types::{ChipConfig, SmtConfig, TraceOp};

/// A pass-through allocator that counts allocation events (`alloc`,
/// `realloc`); frees are not counted — the invariant under test is "no new
/// memory is requested in the steady state".
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A looping trace whose loads touch a fresh cache line every iteration, so
/// misses, MSHR traffic, bus contention and stream-buffer reallocation stay
/// active throughout the measurement window. Every [`Self::JUMP_PERIOD`]
/// loads the stream jumps to a distant region: a perfectly regular stride
/// would converge to full stream-buffer coverage and stop exercising
/// prefetcher allocation; the jumps keep buffer (re)allocation live.
struct FreshMissTrace {
    inner: smt_trace::scripted::LoopingTrace,
    next_line: u64,
}

impl FreshMissTrace {
    fn new() -> Self {
        let mut ops = Vec::new();
        for m in 0..4u64 {
            ops.push(TraceOp::load(0x9000 + 8 * m, 0));
        }
        for i in 0..24u64 {
            ops.push(TraceOp::int_alu(0x100 + 4 * i));
        }
        FreshMissTrace {
            inner: ScriptedTrace::looping("fresh-miss", ops),
            next_line: 0,
        }
    }
}

impl FreshMissTrace {
    const JUMP_PERIOD: u64 = 48;
}

impl TraceSource for FreshMissTrace {
    fn next_op(&mut self) -> TraceOp {
        let mut op = self.inner.next_op();
        if let Some(mem) = op.mem.as_mut() {
            self.next_line += 1;
            if self.next_line.is_multiple_of(Self::JUMP_PERIOD) {
                self.next_line += 4096;
            }
            mem.addr = 0x4000_0000 + self.next_line * 64;
        }
        op
    }

    fn name(&self) -> &str {
        "fresh-miss"
    }
}

fn alu_trace() -> Box<dyn TraceSource> {
    Box::new(ScriptedTrace::looping(
        "cpu-bound",
        (0..64).map(|i| TraceOp::int_alu(0x2000 + 4 * i)).collect(),
    ))
}

fn mixed_pair() -> Vec<Box<dyn TraceSource>> {
    vec![Box::new(FreshMissTrace::new()), alu_trace()]
}

const WARMUP_CYCLES: u64 = 30_000;
const MEASURED_CYCLES: u64 = 10_000;

fn assert_zero_alloc_steady_state(label: &str, mut step: impl FnMut()) {
    for _ in 0..WARMUP_CYCLES {
        step();
    }
    let before = allocation_count();
    for _ in 0..MEASURED_CYCLES {
        step();
    }
    let delta = allocation_count() - before;
    assert_eq!(
        delta, 0,
        "{label}: {delta} heap allocation(s) during {MEASURED_CYCLES} steady-state cycles \
         (warmed {WARMUP_CYCLES} cycles)"
    );
}

#[test]
fn steady_state_cycle_loop_performs_no_heap_allocations() {
    // Recorded once up front (recording may allocate; it is not under test):
    // a short `.smtt` the replay case below streams cyclically, so the
    // measured window also covers the reader's wrap-and-reseek path.
    let replay_path =
        std::env::temp_dir().join(format!("smt-alloc-replay-{}.smtt", std::process::id()));
    let mut recorder = smt_core::runner::build_trace("mcf", smt_core::runner::RunScale::tiny())
        .expect("source builds");
    smt_trace::record_source(recorder.as_mut(), 8192, &replay_path, true)
        .expect("recording succeeds");

    // The bulk-ingestion loop (the `trace_replay_ingest` bench path):
    // zero-copy record iteration over a resident reader must be
    // allocation-free in steady state, cyclic wraps included.
    let mut resident =
        smt_trace::FileTraceSource::open_resident(&replay_path).expect("trace loads resident");
    let mut folded = 0u64;
    assert_zero_alloc_steady_state("FileTraceSource/for_each_record", || {
        resident.for_each_record(64, |record| {
            folded = folded.rotate_left(7).wrapping_add(record.pc());
        });
    });
    assert_ne!(folded, 0, "ingestion loop consumed records");

    for policy in [FetchPolicyKind::Icount, FetchPolicyKind::MlpFlush] {
        let config = SmtConfig::baseline(2).with_policy(policy);
        let mut sim = SmtSimulator::new(config, mixed_pair()).expect("machine builds");
        assert_zero_alloc_steady_state(&format!("SmtSimulator/{policy:?}"), || sim.step());

        // Trace-driven replay: after construction, streaming a recorded
        // `.smtt` through the pipeline — decode, refill batches, cyclic wrap
        // — must be as allocation-free as the synthetic generator.
        let config = SmtConfig::baseline(2).with_policy(policy);
        let replay: Vec<Box<dyn TraceSource>> = vec![
            Box::new(smt_trace::FileTraceSource::open(&replay_path).expect("trace opens")),
            alu_trace(),
        ];
        let mut sim = SmtSimulator::new(config, replay).expect("machine builds");
        assert_zero_alloc_steady_state(&format!("SmtSimulator/replay/{policy:?}"), || sim.step());

        let chip_config = ChipConfig::baseline(2, 2).with_policy(policy);
        let mut chip =
            ChipSimulator::new(chip_config, vec![mixed_pair(), mixed_pair()]).expect("chip builds");
        assert_zero_alloc_steady_state(&format!("ChipSimulator/{policy:?}"), || chip.step());

        // The explicit-order entry point must reuse its validation scratch
        // instead of allocating a fresh bitmask per cycle.
        let chip_config = ChipConfig::baseline(2, 2).with_policy(policy);
        let mut chip =
            ChipSimulator::new(chip_config, vec![mixed_pair(), mixed_pair()]).expect("chip builds");
        let order = [1usize, 0];
        assert_zero_alloc_steady_state(&format!("ChipSimulator/order/{policy:?}"), || {
            chip.step_with_core_order(&order)
        });

        // The pooled path: barriers, locks and stage buffers must all be
        // allocation-free once warm, on the workers as well as the main
        // thread (the counter is process-global).
        let chip_config = ChipConfig::baseline(2, 2)
            .with_policy(policy)
            .with_chip_threads(2);
        let mut chip =
            ChipSimulator::new(chip_config, vec![mixed_pair(), mixed_pair()]).expect("chip builds");
        assert_eq!(chip.chip_threads(), 2, "pooled path must be selected");
        chip.with_parallel_session(|session| {
            assert_zero_alloc_steady_state(&format!("ChipSession/{policy:?}"), || {
                session.step_cycle()
            });
        });
    }
    std::fs::remove_file(&replay_path).ok();
}
