//! Sampled-simulation and checkpoint correctness tests:
//!
//! * sampled IPC estimates stay within the 2% error bound of exact runs while
//!   spending at most 10% of instructions in detailed mode (the wall-clock
//!   speedup proxy — cycles simulated per instruction is deterministic where
//!   wall-clock time is not);
//! * checkpoint save → load → run is bit-for-bit identical to the
//!   uninterrupted run (deterministic cases plus a property test over
//!   fast-forward lengths and budgets);
//! * chip fast-forward is invariant to core stepping order.

use proptest::prelude::*;

use smt_core::pipeline::{SimOptions, SmtSimulator};
use smt_core::runner::{build_trace, RunScale};
use smt_core::ChipSimulator;
use smt_types::config::FetchPolicyKind;
use smt_types::{ChipConfig, SamplingConfig, SmtConfig};

fn build_sim(benchmarks: &[&str], policy: FetchPolicyKind, scale: RunScale) -> SmtSimulator {
    let mut config = SmtConfig::baseline(benchmarks.len());
    config.fetch_policy = policy;
    let traces = benchmarks
        .iter()
        .map(|b| build_trace(b, scale).expect("known benchmark"))
        .collect();
    SmtSimulator::new(config, traces).expect("valid configuration")
}

#[test]
fn sampled_ipc_within_two_percent_of_exact() {
    let scale = RunScale::tiny();
    let benchmarks = ["mcf", "gcc"];
    let budget = 480_000;

    let mut exact_sim = build_sim(&benchmarks, FetchPolicyKind::Icount, scale);
    let exact = exact_sim.run(SimOptions {
        max_instructions_per_thread: budget,
        warmup_instructions_per_thread: 10_000,
        max_cycles: 500_000_000,
    });
    let exact_ipc = exact.total_ipc();

    let sampling = SamplingConfig::default();
    let mut sampled_sim = build_sim(&benchmarks, FetchPolicyKind::Icount, scale);
    let run = sampled_sim
        .run_sampled(
            SimOptions {
                max_instructions_per_thread: budget,
                warmup_instructions_per_thread: 0,
                max_cycles: 500_000_000,
            },
            &sampling,
        )
        .expect("sampled run succeeds");

    assert!(u64::from(run.estimate.windows) >= u64::from(sampling.min_windows));
    let err = (run.estimate.total_ipc.mean - exact_ipc).abs() / exact_ipc;
    assert!(
        err <= 0.02,
        "sampled IPC {} vs exact {} — relative error {:.4} exceeds 2%",
        run.estimate.total_ipc.mean,
        exact_ipc,
        err
    );
    // The speedup target's deterministic proxy: at most 10% of instructions
    // run in detailed mode, so sampled mode simulates ≤ ~10% of the cycles.
    assert!(
        run.estimate.detailed_fraction <= 0.10,
        "detailed fraction {} exceeds 0.10",
        run.estimate.detailed_fraction
    );
}

#[test]
fn sampled_reports_per_thread_estimates_with_intervals() {
    let scale = RunScale::tiny();
    let mut sim = build_sim(&["mcf", "swim"], FetchPolicyKind::MlpFlush, scale);
    let run = sim
        .run_sampled(
            SimOptions {
                max_instructions_per_thread: 30_000,
                warmup_instructions_per_thread: 0,
                max_cycles: 50_000_000,
            },
            &SamplingConfig::default(),
        )
        .expect("sampled run succeeds");
    assert_eq!(run.estimate.per_thread_ipc.len(), 2);
    for est in &run.estimate.per_thread_ipc {
        assert!(est.mean > 0.0);
        assert!(est.ci95 >= 0.0);
    }
    assert_eq!(run.window_cycles.len(), run.estimate.windows as usize);
    assert_eq!(
        run.window_thread_committed.len(),
        run.estimate.windows as usize
    );
}

#[test]
fn checkpoint_requires_pure_fast_forward_boundary() {
    let scale = RunScale::tiny();
    let mut sim = build_sim(&["mcf", "gcc"], FetchPolicyKind::Icount, scale);
    sim.run(SimOptions::with_instructions(1_000));
    assert!(
        sim.checkpoint(scale.seed).is_err(),
        "checkpoint after a detailed run must be rejected"
    );
}

#[test]
fn checkpoint_restore_rejects_geometry_mismatch() {
    let scale = RunScale::tiny();
    let mut donor = build_sim(&["mcf", "gcc"], FetchPolicyKind::Icount, scale);
    donor.fast_forward(5_000);
    let ck = donor.checkpoint(scale.seed).expect("checkpointable");

    let mut four_thread = build_sim(
        &["mcf", "gcc", "swim", "twolf"],
        FetchPolicyKind::Icount,
        scale,
    );
    assert!(four_thread.restore_checkpoint(&ck).is_err());

    let mut wrong_workload = build_sim(&["swim", "twolf"], FetchPolicyKind::Icount, scale);
    assert!(wrong_workload.restore_checkpoint(&ck).is_err());
}

#[test]
fn checkpoint_json_roundtrip_preserves_state() {
    let scale = RunScale::tiny();
    let mut sim = build_sim(&["mcf", "swim"], FetchPolicyKind::MlpFlush, scale);
    sim.fast_forward(12_345);
    let ck = sim.checkpoint(scale.seed).expect("checkpointable");
    let json = serde_json::to_string(&ck).expect("serializes");
    let parsed: smt_core::SimCheckpoint = serde_json::from_str(&json).expect("parses");
    assert_eq!(ck, parsed);
    assert_eq!(parsed.meta.benchmarks, vec!["mcf", "swim"]);
    assert_eq!(parsed.meta.num_threads, 2);
    assert_eq!(parsed.meta.warmed_instructions, 12_345);
}

/// The tentpole determinism property: fast-forwarding `n` instructions and
/// running is bit-for-bit identical to fast-forwarding `n`, checkpointing,
/// restoring into a fresh simulator (via a JSON round-trip), and running.
fn roundtrip_case(policy: FetchPolicyKind, benchmarks: &[&str], ff: u64, budget: u64) {
    let scale = RunScale::tiny();
    let options = SimOptions {
        max_instructions_per_thread: budget,
        warmup_instructions_per_thread: 0,
        max_cycles: 10_000_000,
    };

    let mut direct = build_sim(benchmarks, policy, scale);
    direct.fast_forward(ff);
    let direct_stats = direct.run(options);

    let mut donor = build_sim(benchmarks, policy, scale);
    donor.fast_forward(ff);
    let ck = donor.checkpoint(scale.seed).expect("checkpointable");
    let json = serde_json::to_string(&ck).expect("serializes");
    let ck: smt_core::SimCheckpoint = serde_json::from_str(&json).expect("parses");

    let mut restored = build_sim(benchmarks, policy, scale);
    restored
        .restore_checkpoint(&ck)
        .expect("restore into a fresh equal-geometry simulator");
    let restored_stats = restored.run(options);

    assert_eq!(
        direct_stats, restored_stats,
        "restored run diverged from the uninterrupted run"
    );
}

#[test]
fn checkpoint_roundtrip_bit_for_bit_icount() {
    roundtrip_case(FetchPolicyKind::Icount, &["mcf", "gcc"], 20_000, 3_000);
}

#[test]
fn checkpoint_roundtrip_bit_for_bit_mlpflush() {
    roundtrip_case(FetchPolicyKind::MlpFlush, &["mcf", "swim"], 20_000, 3_000);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn checkpoint_roundtrip_bit_for_bit_any_prefix(
        ff in 1u64..30_000,
        budget in 500u64..3_000,
        policy_mlp in any::<bool>(),
    ) {
        let policy = if policy_mlp {
            FetchPolicyKind::MlpFlush
        } else {
            FetchPolicyKind::Icount
        };
        roundtrip_case(policy, &["mcf", "twolf"], ff, budget);
    }
}

#[test]
fn chip_fast_forward_is_core_order_invariant() {
    let scale = RunScale::tiny();
    let build = || {
        let chip = ChipConfig::baseline(2, 2);
        let traces = vec![
            vec![
                build_trace("mcf", scale).unwrap(),
                build_trace("gcc", scale).unwrap(),
            ],
            vec![
                build_trace("swim", scale).unwrap(),
                build_trace("twolf", scale).unwrap(),
            ],
        ];
        ChipSimulator::new(chip, traces).expect("valid chip")
    };
    let options = SimOptions {
        max_instructions_per_thread: 2_000,
        warmup_instructions_per_thread: 0,
        max_cycles: 10_000_000,
    };

    let mut forward = build();
    forward.fast_forward_with_core_order(10_000, &[0, 1]);
    let forward_stats = forward.run(options);

    let mut reversed = build();
    reversed.fast_forward_with_core_order(10_000, &[1, 0]);
    let reversed_stats = reversed.run(options);

    assert_eq!(
        forward_stats, reversed_stats,
        "chip fast-forward depends on core stepping order"
    );
}

/// The headline sampled cadence for 10x-budget scenarios: a long raw-speed
/// skip, a 44k-instruction functional-warming horizon, and a short detailed
/// window (~1% detailed fraction, 25 windows at a 4.8M budget).
fn ten_x_cadence() -> SamplingConfig {
    SamplingConfig {
        skip_instructions: 150_000,
        ff_instructions: 44_000,
        warm_instructions: 500,
        measure_instructions: 1_500,
        min_windows: 3,
    }
}

#[test]
fn skip_forward_freezes_warm_state_and_advances_trace() {
    let scale = RunScale::tiny();
    let mut sim = build_sim(&["mcf", "gcc"], FetchPolicyKind::Icount, scale);
    sim.fast_forward(10_000);
    let before = sim.checkpoint(scale.seed).expect("checkpointable");
    sim.skip_forward(5_000);
    let after = sim
        .checkpoint(scale.seed)
        .expect("still a pure-ff boundary");

    // The trace position moved...
    for (b, a) in before.threads.iter().zip(&after.threads) {
        assert_eq!(a.committed, b.committed + 5_000);
        assert_ne!(a.trace, b.trace, "trace source did not advance");
    }
    // ...but every warm structure is bit-for-bit frozen.
    assert_eq!(after.memory, before.memory);
    assert_eq!(after.shared, before.shared);
    for (b, a) in before.threads.iter().zip(&after.threads) {
        assert_eq!(a.branch_predictor, b.branch_predictor);
        assert_eq!(a.lll_predictor, b.lll_predictor);
        assert_eq!(a.mlp_predictor, b.mlp_predictor);
        assert_eq!(a.binary_mlp_predictor, b.binary_mlp_predictor);
        assert_eq!(a.llsr, b.llsr);
        assert_eq!(a.pending_mlp_evals, b.pending_mlp_evals);
    }
}

#[test]
fn sampled_run_with_skip_phase_is_deterministic() {
    let scale = RunScale::tiny();
    let sampling = SamplingConfig {
        skip_instructions: 6_000,
        ff_instructions: 3_000,
        warm_instructions: 300,
        measure_instructions: 700,
        min_windows: 3,
    };
    let options = SimOptions {
        max_instructions_per_thread: 60_000,
        warmup_instructions_per_thread: 0,
        max_cycles: 50_000_000,
    };
    let run = |_: u32| {
        let mut sim = build_sim(&["mcf", "swim"], FetchPolicyKind::MlpFlush, scale);
        sim.run_sampled(options, &sampling)
            .expect("sampled run succeeds")
    };
    let first = run(0);
    assert!(u64::from(first.estimate.windows) >= u64::from(sampling.min_windows));
    assert!(first.estimate.total_ipc.mean > 0.0);
    assert_eq!(
        first,
        run(1),
        "sampled run with a skip phase is not deterministic"
    );
}

/// Release-scale acceptance check, exercised by the `sampled-smoke` CI job:
/// on a 10x instruction budget the headline cadence stays within 2% of the
/// exact IPC on both registry mixes and runs at >= 10x the exact
/// simulator's wall-clock rate on the 4T headline mix.
#[test]
#[ignore = "release-scale acceptance check; run explicitly (sampled-smoke CI job)"]
fn sampled_ten_x_budget_speedup_and_error() {
    let budget = 4_800_000u64;
    let scale = RunScale::tiny();
    let sampling = ten_x_cadence();
    let mixes: [&[&str]; 2] = [&["mcf", "gcc"], &["mcf", "gcc", "swim", "twolf"]];
    for mix in mixes {
        let mut exact_sim = build_sim(mix, FetchPolicyKind::Icount, scale);
        let t0 = std::time::Instant::now();
        let exact = exact_sim.run(SimOptions {
            max_instructions_per_thread: budget,
            warmup_instructions_per_thread: 10_000,
            max_cycles: 500_000_000,
        });
        let t_exact = t0.elapsed();
        let exact_ipc = exact.total_ipc();

        let mut sampled_sim = build_sim(mix, FetchPolicyKind::Icount, scale);
        let t0 = std::time::Instant::now();
        let run = sampled_sim
            .run_sampled(
                SimOptions {
                    max_instructions_per_thread: budget,
                    warmup_instructions_per_thread: 0,
                    max_cycles: 500_000_000,
                },
                &sampling,
            )
            .expect("sampled run succeeds");
        let t_sampled = t0.elapsed();

        let err = (run.estimate.total_ipc.mean - exact_ipc).abs() / exact_ipc;
        let speedup = t_exact.as_secs_f64() / t_sampled.as_secs_f64();
        eprintln!(
            "{}T: exact={exact_ipc:.4} sampled={:.4} err={err:.4} windows={} speedup={speedup:.1}x",
            mix.len(),
            run.estimate.total_ipc.mean,
            run.estimate.windows
        );
        assert!(
            err <= 0.02,
            "{}T mix: sampled IPC error {err:.4} exceeds 2%",
            mix.len()
        );
        if mix.len() == 4 {
            assert!(
                speedup >= 10.0,
                "4T mix: sampled speedup {speedup:.1}x is below the 10x target"
            );
        }
    }
}
