//! Workspace umbrella crate for the HPCA 2007 "MLP-aware fetch policy"
//! reproduction.
//!
//! The actual functionality lives in the `crates/` members; this crate hosts
//! the repository-level `examples/` and `tests/` and re-exports the crates
//! they exercise.

#![deny(missing_docs)]

pub use smt_core as core;
pub use smt_trace as trace;
pub use smt_types as types;
